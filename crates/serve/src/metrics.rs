//! Request counters and latency statistics for the serving engine:
//! one global [`Metrics`] for the whole service plus a [`ModelMetrics`]
//! map holding an independent `Metrics` per registry entry, so `stats
//! model=<name>` can report per-model traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How many recent request latencies are retained for percentiles.
const LATENCY_WINDOW: usize = 4096;

/// Lock-free counters plus a bounded window of recent latencies.
#[derive(Debug, Default)]
pub struct Metrics {
    received: AtomicU64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    /// Round-robin overwrite position once the window is full. A
    /// dedicated cursor, *not* the `received` counter: `received` moves
    /// concurrently with completions, so deriving the slot from it let
    /// parallel completions land on the same slot and lose samples.
    cursor: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a request entering the queue.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request rejected by load shedding (queue full).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed request and records its latency.
    pub fn on_done(&self, ok: bool, latency: Duration) {
        if ok {
            self.succeeded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut window = self.latencies_us.lock().expect("metrics lock poisoned");
        if window.len() == LATENCY_WINDOW {
            // Keep the window bounded: overwrite round-robin. The cursor
            // advances once per write, so every completion lands in its
            // own slot and old samples age out uniformly.
            let idx = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % LATENCY_WINDOW;
            window[idx] = us;
        } else {
            window.push(us);
        }
    }

    /// A consistent point-in-time summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sorted = self
            .latencies_us
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        sorted.sort_unstable();
        let (min, mean, p95, max) = if sorted.is_empty() {
            (0, 0.0, 0, 0)
        } else {
            let min = sorted[0];
            let max = *sorted.last().expect("non-empty");
            let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
            // Nearest-rank p95 (ceil(0.95 n) - 1), the same convention the
            // analysis crate uses for corpus percentiles.
            let rank = ((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
            (min, mean, sorted[rank], max)
        };
        MetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            latency_samples: sorted.len() as u64,
            latency_us_min: min,
            latency_us_mean: mean,
            latency_us_p95: p95,
            latency_us_max: max,
        }
    }
}

/// Per-model metrics: one independent [`Metrics`] per registry entry,
/// created on first traffic and keyed by model name.
///
/// Entries survive hot reloads — a model swapped in under the same name
/// keeps accumulating into the same counters, so `stats model=<name>`
/// reports the lifetime of the *name*, not of one loaded version. For a
/// per-model entry, `received` is counted when a request resolves to the
/// model (not at enqueue: the model is unknown until then) and `shed`
/// stays zero — shedding happens before any model is picked.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    models: RwLock<HashMap<String, Arc<Metrics>>>,
}

impl ModelMetrics {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics entry for `name`, created zeroed on first use.
    pub fn for_model(&self, name: &str) -> Arc<Metrics> {
        if let Some(entry) = self
            .models
            .read()
            .expect("model metrics lock poisoned")
            .get(name)
        {
            return Arc::clone(entry);
        }
        let mut models = self.models.write().expect("model metrics lock poisoned");
        Arc::clone(models.entry(name.to_string()).or_default())
    }

    /// The entry for `name`, if the model has seen any traffic.
    pub fn get(&self, name: &str) -> Option<Arc<Metrics>> {
        self.models
            .read()
            .expect("model metrics lock poisoned")
            .get(name)
            .cloned()
    }

    /// Names with at least one metrics entry, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("model metrics lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

/// Point-in-time metrics values, as reported by the `stats` command.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that completed with an `ok` reply.
    pub succeeded: u64,
    /// Requests that completed with an `err` reply.
    pub failed: u64,
    /// Requests rejected because the queue was full.
    pub shed: u64,
    /// Latency samples currently in the window.
    pub latency_samples: u64,
    /// Fastest request in the window, microseconds.
    pub latency_us_min: u64,
    /// Mean latency over the window, microseconds.
    pub latency_us_mean: f64,
    /// Nearest-rank 95th percentile latency, microseconds.
    pub latency_us_p95: u64,
    /// Slowest request in the window, microseconds.
    pub latency_us_max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.received, 0);
        assert_eq!(snap.latency_samples, 0);
        assert_eq!(snap.latency_us_min, 0);
        assert_eq!(snap.latency_us_max, 0);
    }

    #[test]
    fn latency_stats_use_nearest_rank_p95() {
        let metrics = Metrics::new();
        for us in 1..=100u64 {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(us));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.received, 100);
        assert_eq!(snap.succeeded, 100);
        assert_eq!(snap.latency_us_min, 1);
        assert_eq!(snap.latency_us_max, 100);
        assert_eq!(snap.latency_us_p95, 95, "nearest-rank of 1..=100");
        assert!((snap.latency_us_mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn failure_and_shed_counters_are_separate() {
        let metrics = Metrics::new();
        metrics.on_received();
        metrics.on_done(false, Duration::from_micros(7));
        metrics.on_shed();
        let snap = metrics.snapshot();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.succeeded, 0);
    }

    #[test]
    fn latency_window_stays_bounded() {
        let metrics = Metrics::new();
        for _ in 0..(LATENCY_WINDOW + 500) {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(3));
        }
        assert_eq!(metrics.snapshot().latency_samples as usize, LATENCY_WINDOW);
    }

    #[test]
    fn full_window_overwrites_advance_even_when_received_stalls() {
        // The old cursor was derived from `received`, so completions
        // arriving without interleaved submissions hammered one slot and
        // lost samples. With a dedicated write cursor, a full generation
        // of overwrites replaces every slot.
        let metrics = Metrics::new();
        for _ in 0..LATENCY_WINDOW {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(1));
        }
        // `received` frozen from here on: only completions.
        for _ in 0..LATENCY_WINDOW {
            metrics.on_done(true, Duration::from_micros(9));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.latency_us_min, 9, "every old sample must age out");
        assert_eq!(snap.latency_us_max, 9);
    }

    #[test]
    fn model_metrics_entries_are_independent_and_sorted() {
        let models = ModelMetrics::new();
        models.for_model("b").on_received();
        models.for_model("a").on_received();
        models
            .for_model("a")
            .on_done(true, Duration::from_micros(5));
        assert_eq!(models.names(), vec!["a".to_string(), "b".to_string()]);
        let a = models.get("a").expect("entry exists").snapshot();
        assert_eq!((a.received, a.succeeded), (1, 1));
        let b = models.get("b").expect("entry exists").snapshot();
        assert_eq!((b.received, b.succeeded), (1, 0));
        assert!(models.get("c").is_none());
    }
}
