//! Request counters and latency statistics for the serving engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent request latencies are retained for percentiles.
const LATENCY_WINDOW: usize = 4096;

/// Lock-free counters plus a bounded window of recent latencies.
#[derive(Debug, Default)]
pub struct Metrics {
    received: AtomicU64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a request entering the queue.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request rejected by load shedding (queue full).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed request and records its latency.
    pub fn on_done(&self, ok: bool, latency: Duration) {
        if ok {
            self.succeeded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut window = self.latencies_us.lock().expect("metrics lock poisoned");
        if window.len() == LATENCY_WINDOW {
            // Keep the window bounded: overwrite round-robin using the
            // total count as a cursor so old samples age out.
            let idx = (self.received.load(Ordering::Relaxed) as usize) % LATENCY_WINDOW;
            window[idx] = us;
        } else {
            window.push(us);
        }
    }

    /// A consistent point-in-time summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sorted = self
            .latencies_us
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        sorted.sort_unstable();
        let (min, mean, p95, max) = if sorted.is_empty() {
            (0, 0.0, 0, 0)
        } else {
            let min = sorted[0];
            let max = *sorted.last().expect("non-empty");
            let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
            // Nearest-rank p95 (ceil(0.95 n) - 1), the same convention the
            // analysis crate uses for corpus percentiles.
            let rank = ((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
            (min, mean, sorted[rank], max)
        };
        MetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            latency_samples: sorted.len() as u64,
            latency_us_min: min,
            latency_us_mean: mean,
            latency_us_p95: p95,
            latency_us_max: max,
        }
    }
}

/// Point-in-time metrics values, as reported by the `stats` command.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that completed with an `ok` reply.
    pub succeeded: u64,
    /// Requests that completed with an `err` reply.
    pub failed: u64,
    /// Requests rejected because the queue was full.
    pub shed: u64,
    /// Latency samples currently in the window.
    pub latency_samples: u64,
    /// Fastest request in the window, microseconds.
    pub latency_us_min: u64,
    /// Mean latency over the window, microseconds.
    pub latency_us_mean: f64,
    /// Nearest-rank 95th percentile latency, microseconds.
    pub latency_us_p95: u64,
    /// Slowest request in the window, microseconds.
    pub latency_us_max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.received, 0);
        assert_eq!(snap.latency_samples, 0);
        assert_eq!(snap.latency_us_min, 0);
        assert_eq!(snap.latency_us_max, 0);
    }

    #[test]
    fn latency_stats_use_nearest_rank_p95() {
        let metrics = Metrics::new();
        for us in 1..=100u64 {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(us));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.received, 100);
        assert_eq!(snap.succeeded, 100);
        assert_eq!(snap.latency_us_min, 1);
        assert_eq!(snap.latency_us_max, 100);
        assert_eq!(snap.latency_us_p95, 95, "nearest-rank of 1..=100");
        assert!((snap.latency_us_mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn failure_and_shed_counters_are_separate() {
        let metrics = Metrics::new();
        metrics.on_received();
        metrics.on_done(false, Duration::from_micros(7));
        metrics.on_shed();
        let snap = metrics.snapshot();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.succeeded, 0);
    }

    #[test]
    fn latency_window_stays_bounded() {
        let metrics = Metrics::new();
        for _ in 0..(LATENCY_WINDOW + 500) {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(3));
        }
        assert_eq!(metrics.snapshot().latency_samples as usize, LATENCY_WINDOW);
    }
}
