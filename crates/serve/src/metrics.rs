//! Request counters and latency statistics for the serving engine:
//! one global [`Metrics`] for the whole service plus a [`ModelMetrics`]
//! map holding an independent `Metrics` per registry entry, so `stats
//! model=<name>` can report per-model traffic.
//!
//! Latency is tracked in three lock-free [`LogHistogram`]s (power-of-2
//! buckets over microseconds): end-to-end latency, queue wait (enqueue
//! to worker pickup), and service time (everything after queue wait).
//! Recording is a few relaxed atomic adds — no mutex, no sampling
//! window, no lost samples under contention. Percentiles come from
//! [`HistogramSnapshot::quantile`], the one place that defines the
//! nearest-rank semantics used across the repo (values are quantized to
//! log-bucket upper bounds, clamped to the observed min/max).

use bagpred_obs::{HistogramSnapshot, LogHistogram, PageHinkley, ResidualWindow};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Request priority class, used by brownout shedding: under queue
/// pressure a shard sheds `Low` traffic first, then `Normal`, and only
/// refuses `High` when the queue is actually full. Carried as
/// `prio=high|normal|low` on the text protocol and as one byte in the
/// binary predict payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Shed only when the queue is completely full.
    High,
    /// The default class; shed at the upper watermark.
    #[default]
    Normal,
    /// Best-effort traffic; shed first, at the lower watermark.
    Low,
}

impl Priority {
    /// Every class, in shed order (last sheds first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable lowercase name used in wire options and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// Stable one-byte wire code (binary predict payload). Zero is the
    /// default class so an all-zero byte means "normal", matching the
    /// text protocol's omitted `prio=`.
    pub fn wire_code(self) -> u8 {
        match self {
            Priority::Normal => 0,
            Priority::High => 1,
            Priority::Low => 2,
        }
    }

    /// Inverse of [`wire_code`](Self::wire_code).
    pub fn from_wire_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Priority::Normal),
            1 => Some(Priority::High),
            2 => Some(Priority::Low),
            _ => None,
        }
    }

    /// Dense index for per-class counter arrays (matches [`ALL`](Self::ALL)).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Lock-free counters plus per-phase latency histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    received: AtomicU64,
    succeeded: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    latency: LogHistogram,
    queue_wait: LogHistogram,
    service: LogHistogram,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a request entering the queue.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request rejected by load shedding (queue full).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed request and records its end-to-end latency.
    pub fn on_done(&self, ok: bool, latency: Duration) {
        if ok {
            self.succeeded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_duration(latency);
    }

    /// Records the queue-wait vs. service-time split of a completed
    /// request (service time = end-to-end minus parse and queue wait).
    pub fn on_phases(&self, queue_wait: Duration, service: Duration) {
        self.queue_wait.record_duration(queue_wait);
        self.service.record_duration(service);
    }

    /// The end-to-end latency histogram.
    pub fn latency(&self) -> &LogHistogram {
        &self.latency
    }

    /// The queue-wait histogram.
    pub fn queue_wait(&self) -> &LogHistogram {
        &self.queue_wait
    }

    /// The service-time histogram.
    pub fn service(&self) -> &LogHistogram {
        &self.service
    }

    /// A point-in-time summary.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            succeeded: self.succeeded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            latency: LatencySummary::of(&self.latency.snapshot()),
            queue_wait: LatencySummary::of(&self.queue_wait.snapshot()),
            service: LatencySummary::of(&self.service.snapshot()),
        }
    }
}

/// Per-model metrics: one independent [`Metrics`] per registry entry,
/// created on first traffic and keyed by model name.
///
/// Entries survive hot reloads — a model swapped in under the same name
/// keeps accumulating into the same counters, so `stats model=<name>`
/// reports the lifetime of the *name*, not of one loaded version. For a
/// per-model entry, `received` is counted when a request resolves to the
/// model (not at enqueue: the model is unknown until then) and `shed`
/// stays zero — shedding happens before any model is picked.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    models: RwLock<HashMap<String, Arc<Metrics>>>,
}

impl ModelMetrics {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics entry for `name`, created zeroed on first use.
    ///
    /// First-traffic racers are safe: the optimistic read-lock probe can
    /// miss for several threads at once, but each then re-checks under
    /// the write lock via `entry().or_default()`, so exactly one entry
    /// is ever created per name and every caller gets a clone of that
    /// same `Arc` — an entry another racer already received can never be
    /// clobbered by a later insert.
    pub fn for_model(&self, name: &str) -> Arc<Metrics> {
        if let Some(entry) = self
            .models
            .read()
            .expect("model metrics lock poisoned")
            .get(name)
        {
            return Arc::clone(entry);
        }
        let mut models = self.models.write().expect("model metrics lock poisoned");
        Arc::clone(models.entry(name.to_string()).or_default())
    }

    /// The entry for `name`, if the model has seen any traffic.
    pub fn get(&self, name: &str) -> Option<Arc<Metrics>> {
        self.models
            .read()
            .expect("model metrics lock poisoned")
            .get(name)
            .cloned()
    }

    /// Names with at least one metrics entry, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("model metrics lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

/// Lock-free accounting for one engine shard (per-model queue + worker
/// set). Distinct from the per-model [`Metrics`] entry: that one tracks
/// request outcomes by model *name* across reloads, while these track
/// the queue the job actually waited in — under sharding the two agree,
/// and in legacy single-queue mode every model's stats point at the one
/// control shard, making the old shared-queue attribution explicit
/// instead of silently wrong.
#[derive(Debug, Default)]
pub struct ShardCounters {
    enqueued: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    queue_wait: LogHistogram,
}

impl ShardCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a job accepted into this shard's queue.
    pub fn on_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job drained and answered by this shard's workers, and
    /// records how long it sat in *this* shard's queue.
    pub fn on_served(&self, queue_wait: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record_duration(queue_wait);
    }

    /// Counts a job this shard refused (queue full) or dropped at
    /// dequeue (deadline already passed).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// A point-in-time summary; `name` and `queue_depth` come from the
    /// shard itself (depth needs its queue lock, not held here).
    pub fn snapshot(&self, name: &str, queue_depth: usize) -> ShardSnapshot {
        ShardSnapshot {
            name: name.to_string(),
            queue_depth,
            enqueued: self.enqueued.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queue_wait: LatencySummary::of(&self.queue_wait.snapshot()),
        }
    }
}

/// Point-in-time view of one shard, reported by `stats`
/// (and per model by `stats model=<name>`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard name: the model name, or `_control` for the shard serving
    /// non-predict commands and unresolvable requests.
    pub name: String,
    /// Jobs waiting in the shard queue right now.
    pub queue_depth: usize,
    /// Jobs accepted into the queue since start.
    pub enqueued: u64,
    /// Jobs drained and answered since start.
    pub served: u64,
    /// Jobs refused (queue full) or expired at dequeue since start.
    pub shed: u64,
    /// Time jobs sat in this shard's queue before pickup.
    pub queue_wait: LatencySummary,
}

/// Point-in-time brownout pressure, reported alongside `health` so a
/// load balancer can steer low-priority traffic away *before* the hard
/// capacity bound refuses everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrownoutPressure {
    /// Cumulative brownout sheds per priority class, in
    /// [`Priority::ALL`] order (high, normal, low).
    pub shed: [u64; 3],
    /// The deepest queue across every shard (including `_control`).
    pub max_depth: usize,
    /// Per-shard queue capacity the watermarks are fractions of.
    pub queue_capacity: usize,
}

/// Summary of one latency histogram, as reported by `stats`.
///
/// Percentiles are nearest-rank (see [`HistogramSnapshot::quantile`]),
/// quantized to the histogram's power-of-2 buckets and clamped to the
/// observed min/max.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub samples: u64,
    /// Fastest recorded value, microseconds.
    pub min_us: u64,
    /// Mean over all samples, microseconds.
    pub mean_us: f64,
    /// Median (nearest-rank p50), microseconds.
    pub p50_us: u64,
    /// Nearest-rank 95th percentile, microseconds.
    pub p95_us: u64,
    /// Nearest-rank 99th percentile, microseconds.
    pub p99_us: u64,
    /// Slowest recorded value, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize a histogram snapshot.
    pub fn of(snap: &HistogramSnapshot) -> Self {
        Self {
            samples: snap.count,
            min_us: snap.min,
            mean_us: snap.mean(),
            p50_us: snap.quantile(0.50),
            p95_us: snap.quantile(0.95),
            p99_us: snap.quantile(0.99),
            max_us: snap.max,
        }
    }
}

/// Lock-free counters for the fault-tolerance machinery: caught worker
/// panics, worker respawns, deadline sheds, and quarantine entries.
/// Lives on the engine next to [`Metrics`]; surfaced by `stats` and the
/// Prometheus exposition.
#[derive(Debug, Default)]
pub struct RobustnessCounters {
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    deadline_expired: AtomicU64,
    quarantines: AtomicU64,
    cancelled: AtomicU64,
    cancel_late: AtomicU64,
    hedge_deduped: AtomicU64,
    brownout_shed: [AtomicU64; 3],
}

impl RobustnessCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a predict panic caught by batch isolation.
    pub fn on_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a worker loop respawned after a panic escaped the batch.
    pub fn on_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed at dequeue because its deadline passed.
    pub fn on_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a model entering quarantine.
    pub fn on_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job dropped at dequeue because its id was cancelled
    /// while it waited in the queue.
    pub fn on_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cancel that arrived after its target had already been
    /// served (or was never in flight) — answered `ok cancel=late`.
    pub fn on_cancel_late(&self) {
        self.cancel_late.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hedge attempt whose pair was already served: its stats
    /// and pending-outcome registration were suppressed so the logical
    /// request counts exactly once.
    pub fn on_hedge_deduped(&self) {
        self.hedge_deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed at enqueue by a brownout watermark (queue
    /// under pressure but not full) for its priority class.
    pub fn on_brownout_shed(&self, prio: Priority) {
        self.brownout_shed[prio.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Predict panics caught so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Worker loops respawned so far.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Requests shed on an expired deadline so far.
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Quarantine entries so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// Jobs dropped at dequeue on a cancelled id so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Cancels that arrived too late to matter so far.
    pub fn cancel_late(&self) -> u64 {
        self.cancel_late.load(Ordering::Relaxed)
    }

    /// Hedge attempts deduplicated after their pair was served so far.
    pub fn hedge_deduped(&self) -> u64 {
        self.hedge_deduped.load(Ordering::Relaxed)
    }

    /// Brownout sheds so far for one priority class.
    pub fn brownout_shed(&self, prio: Priority) -> u64 {
        self.brownout_shed[prio.index()].load(Ordering::Relaxed)
    }

    /// Brownout sheds so far across every priority class.
    pub fn brownout_shed_total(&self) -> u64 {
        Priority::ALL.iter().map(|&p| self.brownout_shed(p)).sum()
    }
}

/// Lock-free counters for the outcome-feedback loop: how many reported
/// outcomes joined a recorded prediction, how many referenced an id the
/// engine never recorded (or already consumed), and how many recorded
/// predictions aged out of the pending ring before their outcome
/// arrived. Surfaced by `stats` and the Prometheus exposition.
#[derive(Debug, Default)]
pub struct OutcomeCounters {
    matched: AtomicU64,
    orphaned: AtomicU64,
    expired: AtomicU64,
    drift_alarms: AtomicU64,
}

impl OutcomeCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts an outcome joined to its recorded prediction.
    pub fn on_matched(&self) {
        self.matched.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an outcome whose id had no pending prediction (unknown,
    /// duplicate, or already evicted).
    pub fn on_orphaned(&self) {
        self.orphaned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts pending predictions evicted unmatched (TTL or capacity).
    pub fn on_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a drift alarm edge (a model newly flagged as drifting).
    pub fn on_drift_alarm(&self) {
        self.drift_alarms.fetch_add(1, Ordering::Relaxed);
    }

    /// Outcomes joined so far.
    pub fn matched(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }

    /// Outcomes that found no pending prediction so far.
    pub fn orphaned(&self) -> u64 {
        self.orphaned.load(Ordering::Relaxed)
    }

    /// Pending predictions evicted unmatched so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Drift alarm edges so far.
    pub fn drift_alarms(&self) -> u64 {
        self.drift_alarms.load(Ordering::Relaxed)
    }
}

/// One model's online accuracy state: the rolling residual window plus
/// its drift detector. The window records lock-free; the detector is
/// sequential by nature (Page-Hinkley state is order-dependent) and
/// sits behind a mutex taken only on the outcome path — never on the
/// predict path.
#[derive(Debug)]
pub struct ModelOutcome {
    window: ResidualWindow,
    detector: Mutex<PageHinkley>,
}

impl ModelOutcome {
    fn new(delta: f64, lambda: f64) -> Self {
        Self {
            window: ResidualWindow::new(),
            detector: Mutex::new(PageHinkley::new(delta, lambda)),
        }
    }

    /// Record one joined (prediction, outcome) pair and feed its
    /// percent error to the drift detector. Returns `true` exactly when
    /// the detector fires (its one edge per latch).
    pub fn observe(&self, predicted_us: u64, actual_us: u64) -> bool {
        let ape = self.window.observe(predicted_us, actual_us);
        self.detector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(ape)
    }

    /// The rolling residual statistics.
    pub fn window(&self) -> &ResidualWindow {
        &self.window
    }

    /// Current Page-Hinkley test statistic.
    pub fn drift_score(&self) -> f64 {
        self.detector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .score()
    }

    /// Whether the detector has fired (sticky until reset).
    pub fn drift_fired(&self) -> bool {
        self.detector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .fired()
    }

    /// Re-arm the detector (used when an admin load/reload installs a
    /// fresh model: its accuracy history starts over).
    pub fn reset_detector(&self) {
        self.detector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reset();
    }
}

/// Per-model outcome trackers, keyed by model name and created on the
/// first matched outcome — the same read-probe-then-write-entry map as
/// [`ModelMetrics`], with the detector parameters fixed at service
/// construction.
#[derive(Debug)]
pub struct OutcomeTrackers {
    delta: f64,
    lambda: f64,
    models: RwLock<HashMap<String, Arc<ModelOutcome>>>,
}

impl OutcomeTrackers {
    /// An empty map; every tracker it creates uses the given
    /// Page-Hinkley slack `delta` and threshold `lambda`.
    pub fn new(delta: f64, lambda: f64) -> Self {
        Self {
            delta,
            lambda,
            models: RwLock::new(HashMap::new()),
        }
    }

    /// The tracker for `name`, created fresh on first use (see
    /// [`ModelMetrics::for_model`] for the race-safety argument).
    pub fn for_model(&self, name: &str) -> Arc<ModelOutcome> {
        if let Some(entry) = self
            .models
            .read()
            .expect("outcome trackers lock poisoned")
            .get(name)
        {
            return Arc::clone(entry);
        }
        let mut models = self.models.write().expect("outcome trackers lock poisoned");
        Arc::clone(
            models
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ModelOutcome::new(self.delta, self.lambda))),
        )
    }

    /// The tracker for `name`, if the model has any matched outcomes.
    pub fn get(&self, name: &str) -> Option<Arc<ModelOutcome>> {
        self.models
            .read()
            .expect("outcome trackers lock poisoned")
            .get(name)
            .cloned()
    }

    /// Names with at least one tracker, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .expect("outcome trackers lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

/// Process-wide counters for failures at *boot* time, before any engine
/// (and its [`RobustnessCounters`]) exists: an unusable snapshot
/// directory, or corrupt snapshot files quarantined by a directory
/// load. Rendered into the exposition of every service in the process.
#[derive(Debug)]
pub struct BootStats {
    snapshot_dir_errors: AtomicU64,
    snapshots_quarantined: AtomicU64,
}

impl BootStats {
    /// Counts a boot aborted because the snapshot dir was unusable.
    pub fn on_snapshot_dir_error(&self) {
        self.snapshot_dir_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a corrupt snapshot file moved aside as `<name>.corrupt`.
    pub fn on_snapshot_quarantined(&self) {
        self.snapshots_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Unusable-snapshot-dir boots so far in this process.
    pub fn snapshot_dir_errors(&self) -> u64 {
        self.snapshot_dir_errors.load(Ordering::Relaxed)
    }

    /// Snapshot files quarantined so far in this process.
    pub fn snapshots_quarantined(&self) -> u64 {
        self.snapshots_quarantined.load(Ordering::Relaxed)
    }
}

/// The process-wide [`BootStats`] instance.
pub fn boot_stats() -> &'static BootStats {
    static STATS: BootStats = BootStats {
        snapshot_dir_errors: AtomicU64::new(0),
        snapshots_quarantined: AtomicU64::new(0),
    };
    &STATS
}

/// Point-in-time metrics values, as reported by the `stats` command.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub received: u64,
    /// Requests that completed with an `ok` reply.
    pub succeeded: u64,
    /// Requests that completed with an `err` reply.
    pub failed: u64,
    /// Requests rejected because the queue was full.
    pub shed: u64,
    /// End-to-end request latency.
    pub latency: LatencySummary,
    /// Time between enqueue and a worker draining the job.
    pub queue_wait: LatencySummary,
    /// Time spent being served (end-to-end minus parse and queue wait).
    pub service: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.received, 0);
        assert_eq!(snap.latency.samples, 0);
        assert_eq!(snap.latency.min_us, 0);
        assert_eq!(snap.latency.max_us, 0);
        assert_eq!(snap.queue_wait, LatencySummary::default());
    }

    #[test]
    fn latency_stats_use_nearest_rank_quantiles_at_bucket_resolution() {
        let metrics = Metrics::new();
        for us in 1..=100u64 {
            metrics.on_received();
            metrics.on_done(true, Duration::from_micros(us));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.received, 100);
        assert_eq!(snap.succeeded, 100);
        assert_eq!(snap.latency.samples, 100);
        assert_eq!(snap.latency.min_us, 1);
        assert_eq!(snap.latency.max_us, 100);
        // Nearest-rank at log-bucket resolution: rank 50 falls in the
        // [32, 63] bucket; ranks 95 and 99 fall in [64, 127], whose
        // bound clamps to the observed max of 100.
        assert_eq!(snap.latency.p50_us, 63);
        assert_eq!(snap.latency.p95_us, 100);
        assert_eq!(snap.latency.p99_us, 100);
        assert!((snap.latency.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn failure_and_shed_counters_are_separate() {
        let metrics = Metrics::new();
        metrics.on_received();
        metrics.on_done(false, Duration::from_micros(7));
        metrics.on_shed();
        let snap = metrics.snapshot();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.succeeded, 0);
    }

    #[test]
    fn queue_wait_and_service_time_are_tracked_separately() {
        let metrics = Metrics::new();
        metrics.on_received();
        metrics.on_done(true, Duration::from_micros(1000));
        metrics.on_phases(Duration::from_micros(800), Duration::from_micros(200));
        let snap = metrics.snapshot();
        assert_eq!(snap.queue_wait.samples, 1);
        assert_eq!(snap.queue_wait.max_us, 800);
        assert_eq!(snap.service.samples, 1);
        assert_eq!(snap.service.max_us, 200);
        assert_eq!(snap.latency.max_us, 1000);
    }

    #[test]
    fn histogram_keeps_every_sample_no_window() {
        // The old Mutex<Vec> window capped retention at 4096 samples;
        // the histogram keeps exact counts forever.
        let metrics = Metrics::new();
        for _ in 0..5000u64 {
            metrics.on_done(true, Duration::from_micros(3));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.latency.samples, 5000);
        assert_eq!(snap.latency.min_us, 3);
        assert_eq!(snap.latency.max_us, 3);
    }

    #[test]
    fn model_metrics_entries_are_independent_and_sorted() {
        let models = ModelMetrics::new();
        models.for_model("b").on_received();
        models.for_model("a").on_received();
        models
            .for_model("a")
            .on_done(true, Duration::from_micros(5));
        assert_eq!(models.names(), vec!["a".to_string(), "b".to_string()]);
        let a = models.get("a").expect("entry exists").snapshot();
        assert_eq!((a.received, a.succeeded), (1, 1));
        let b = models.get("b").expect("entry exists").snapshot();
        assert_eq!((b.received, b.succeeded), (1, 0));
        assert!(models.get("c").is_none());
    }

    #[test]
    fn priority_names_and_wire_codes_round_trip() {
        for prio in Priority::ALL {
            assert_eq!(Priority::from_name(prio.name()), Some(prio));
            assert_eq!(Priority::from_wire_code(prio.wire_code()), Some(prio));
        }
        // Frozen wire values: zero must stay the default class.
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::Normal.wire_code(), 0);
        assert_eq!(Priority::from_name("urgent"), None);
        assert_eq!(Priority::from_wire_code(3), None);
    }

    #[test]
    fn brownout_and_cancel_counters_track_per_class() {
        let robust = RobustnessCounters::new();
        robust.on_brownout_shed(Priority::Low);
        robust.on_brownout_shed(Priority::Low);
        robust.on_brownout_shed(Priority::Normal);
        robust.on_cancelled();
        robust.on_cancel_late();
        robust.on_hedge_deduped();
        assert_eq!(robust.brownout_shed(Priority::Low), 2);
        assert_eq!(robust.brownout_shed(Priority::Normal), 1);
        assert_eq!(robust.brownout_shed(Priority::High), 0);
        assert_eq!(robust.brownout_shed_total(), 3);
        assert_eq!(robust.cancelled(), 1);
        assert_eq!(robust.cancel_late(), 1);
        assert_eq!(robust.hedge_deduped(), 1);
    }

    #[test]
    fn first_traffic_racers_share_one_entry_and_lose_no_counts() {
        // Spawn-heavy check of the read-then-write upgrade in
        // `for_model`: many threads request the same never-seen name at
        // once; all must get the same underlying entry and every count
        // must land in it.
        for round in 0..16 {
            let models = Arc::new(ModelMetrics::new());
            let name = format!("fresh-{round}");
            let handles: Vec<_> = (0..16)
                .map(|racer| {
                    let models = Arc::clone(&models);
                    let name = name.clone();
                    std::thread::Builder::new()
                        .name(format!("racer-{round}-{racer}"))
                        .spawn(move || {
                            let entry = models.for_model(&name);
                            entry.on_received();
                            entry
                        })
                        .expect("spawn racer thread")
                })
                .collect();
            // `join_named` instead of `join().unwrap()`: a failure names
            // the racer that died and carries its panic message, instead
            // of an anonymous `Any { .. }`.
            let entries: Vec<Arc<Metrics>> = handles
                .into_iter()
                .map(crate::testutil::join_named)
                .collect();
            let canonical = models.get(&name).expect("entry exists");
            for entry in &entries {
                assert!(
                    Arc::ptr_eq(entry, &canonical),
                    "racer got a clobbered entry"
                );
            }
            assert_eq!(canonical.snapshot().received, 16, "lost counts");
            assert_eq!(models.names().len(), 1);
        }
    }
}
