//! Deterministic fault injection and per-model health state.
//!
//! Production code never fails on demand, so the fault-tolerance paths
//! (worker supervision, snapshot quarantine, deadline shedding) would go
//! untested without a way to *make* them fail. A [`FaultPlan`] arms a
//! fixed budget of failures at named sites; the serve stack consults it
//! at each site and injects the failure while the budget lasts. With the
//! default empty plan every check is a single `Vec::is_empty` — the hot
//! path stays hot.
//!
//! Plans are deterministic by construction: each armed fault carries a
//! `count` budget that is atomically decremented, so a plan like
//! `worker_panic:model=pair-tree:count=2` panics exactly the first two
//! pair-tree predict batches and never again, regardless of thread
//! interleaving.
//!
//! The module also owns [`ModelHealth`]: the consecutive-panic counters
//! and sticky quarantine bits the engine uses to fence off a model that
//! keeps blowing up, without taking the rest of the registry down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

/// Environment variable holding a fault spec for [`FaultPlan::from_env`].
pub const FAULTS_ENV: &str = "BAGPRED_FAULTS";

/// Named places in the serve stack where a [`FaultPlan`] can inject a
/// failure. Sites are spelled in snake_case in fault specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside `predict_batch`, exercising batch isolation and
    /// model quarantine. Honors the `model=` filter.
    WorkerPanic,
    /// Panic at the top of the worker loop, before any job is drained,
    /// exercising worker respawn without losing queued jobs.
    WorkerAbort,
    /// Sleep for `ms=` inside a predict batch, exercising deadline
    /// shedding and backpressure. Honors the `model=` filter.
    SlowPredict,
    /// Simulate a crash mid-snapshot-write: half the bytes land on the
    /// final path, as a plain non-atomic write would leave them.
    TornSnapshotWrite,
    /// Sleep for `ms=` before writing a reply to the socket, exercising
    /// client timeouts and retry.
    StallReplyWrite,
    /// Swallow a reply frame instead of writing it, exercising the
    /// hedging client's ability to win via its other attempt (and the
    /// soak harness's stuck-connection invariant).
    DropReply,
    /// Write a reply frame twice, exercising the client's stale-id
    /// discard — the duplicate must be skipped, never misdelivered.
    DupReply,
    /// Sleep for `ms=` inside the cancel fast path, widening the window
    /// of the cancel-vs-reply race the soak harness drills.
    CancelRace,
}

impl FaultSite {
    /// The spec spelling of the site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::WorkerAbort => "worker_abort",
            FaultSite::SlowPredict => "slow_predict",
            FaultSite::TornSnapshotWrite => "torn_snapshot_write",
            FaultSite::StallReplyWrite => "stall_reply_write",
            FaultSite::DropReply => "drop_reply",
            FaultSite::DupReply => "dup_reply",
            FaultSite::CancelRace => "cancel_race",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "worker_panic" => Some(FaultSite::WorkerPanic),
            "worker_abort" => Some(FaultSite::WorkerAbort),
            "slow_predict" => Some(FaultSite::SlowPredict),
            "torn_snapshot_write" => Some(FaultSite::TornSnapshotWrite),
            "stall_reply_write" => Some(FaultSite::StallReplyWrite),
            "drop_reply" => Some(FaultSite::DropReply),
            "dup_reply" => Some(FaultSite::DupReply),
            "cancel_race" => Some(FaultSite::CancelRace),
            _ => None,
        }
    }
}

/// One armed fault: a site, an optional model filter, a delay for the
/// sleeping sites, a sampling period, and a remaining-fires budget.
#[derive(Debug)]
struct ArmedFault {
    site: FaultSite,
    model: Option<String>,
    delay: Duration,
    /// Fire only on every `every`-th matching attempt (1 = every one).
    /// Lets a plan slow a deterministic *fraction* of traffic — the
    /// tail-latency benchmarks hit ~1-in-N requests without burning the
    /// budget on the hedge copies that arrive in between.
    every: u64,
    attempts: AtomicU64,
    remaining: AtomicU64,
}

/// A deterministic budget of failures to inject at named sites.
///
/// Parse one from a spec string (see [`FaultPlan::parse`]) or the
/// `BAGPRED_FAULTS` environment variable, hand it to
/// [`ServiceConfig`](crate::ServiceConfig), and the serve stack injects
/// each armed fault until its budget runs out. The default plan is
/// empty and injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<ArmedFault>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// The empty plan: nothing ever fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parse a fault spec: `;`-separated entries, each
    /// `site[:key=value]*` with keys `model=` (filter to one model),
    /// `count=` (fires before the fault disarms, default 1), `ms=`
    /// (sleep duration for the stalling sites, default 0), and `every=`
    /// (fire only on every N-th matching attempt, default 1 — skipped
    /// attempts do not consume the `count` budget).
    ///
    /// ```
    /// use bagpred_serve::FaultPlan;
    /// let plan = FaultPlan::parse("worker_panic:model=pair-tree:count=2;slow_predict:ms=50").unwrap();
    /// assert!(plan.is_armed());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split(':');
            let site_name = parts.next().unwrap_or_default().trim();
            let site = FaultSite::from_name(site_name)
                .ok_or_else(|| format!("unknown fault site `{site_name}` in `{entry}`"))?;
            let mut model = None;
            let mut count = 1u64;
            let mut delay = Duration::ZERO;
            let mut every = 1u64;
            for part in parts {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("expected key=value, got `{part}` in `{entry}`"))?;
                match key.trim() {
                    "model" => model = Some(value.trim().to_string()),
                    "count" => {
                        count = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad count `{value}` in `{entry}`"))?;
                    }
                    "ms" => {
                        let ms: u64 = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad ms `{value}` in `{entry}`"))?;
                        delay = Duration::from_millis(ms);
                    }
                    "every" => {
                        every = value
                            .trim()
                            .parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad every `{value}` in `{entry}`"))?;
                    }
                    other => return Err(format!("unknown fault key `{other}` in `{entry}`")),
                }
            }
            faults.push(ArmedFault {
                site,
                model,
                delay,
                every,
                attempts: AtomicU64::new(0),
                remaining: AtomicU64::new(count),
            });
        }
        Ok(FaultPlan {
            faults,
            injected: AtomicU64::new(0),
        })
    }

    /// Build a plan from the `BAGPRED_FAULTS` environment variable; an
    /// unset or empty variable yields the empty plan.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec),
            _ => Ok(Self::none()),
        }
    }

    /// Whether any fault is armed (budgets may still be exhausted).
    pub fn is_armed(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Consume one firing at `site` for `model`, if an armed fault
    /// matches and has budget left. Returns whether to inject.
    pub fn fire(&self, site: FaultSite, model: Option<&str>) -> bool {
        self.consume(site, model).is_some()
    }

    /// Like [`FaultPlan::fire`], but returns the armed delay so the
    /// caller can sleep for it.
    pub fn fire_delay(&self, site: FaultSite, model: Option<&str>) -> Option<Duration> {
        self.consume(site, model)
    }

    /// Total faults injected so far across all sites.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn consume(&self, site: FaultSite, model: Option<&str>) -> Option<Duration> {
        if self.faults.is_empty() {
            return None;
        }
        for fault in &self.faults {
            if fault.site != site {
                continue;
            }
            if let Some(filter) = &fault.model {
                if model != Some(filter.as_str()) {
                    continue;
                }
            }
            // Sampling: only every `every`-th matching attempt fires.
            // Skipped attempts leave the budget untouched, so
            // `every=20:count=5` slows exactly attempts 20, 40, ..., 100.
            let attempt = fault.attempts.fetch_add(1, Ordering::Relaxed) + 1;
            if attempt % fault.every != 0 {
                continue;
            }
            // Decrement the budget without ever wrapping below zero, so
            // concurrent callers collectively fire exactly `count` times.
            let mut seen = fault.remaining.load(Ordering::Relaxed);
            while seen > 0 {
                match fault.remaining.compare_exchange_weak(
                    seen,
                    seen - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.injected.fetch_add(1, Ordering::Relaxed);
                        return Some(fault.delay);
                    }
                    Err(now) => seen = now,
                }
            }
        }
        None
    }
}

/// Best-effort extraction of a human-readable message from a panic
/// payload (the `Box<dyn Any>` that `catch_unwind` and `join` return).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[derive(Debug, Default)]
struct ModelState {
    consecutive: AtomicU32,
    total: AtomicU64,
    quarantined: AtomicBool,
    drifting: AtomicBool,
}

/// Per-model panic accounting and sticky quarantine bits.
///
/// The engine records every caught predict panic here; once a model
/// accumulates `threshold` *consecutive* panics it is quarantined and
/// answers `err unavailable` until an admin `load`/`reload` clears it.
/// A successful predict resets the consecutive counter but never lifts
/// an existing quarantine — a model that flaps between panicking and
/// working stays fenced off until an operator intervenes.
#[derive(Debug, Default)]
pub struct ModelHealth {
    states: RwLock<HashMap<String, Arc<ModelState>>>,
}

/// Point-in-time health of one model, as reported by the `health` wire
/// command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Registry name of the model.
    pub model: String,
    /// Whether the model is quarantined (answers `err unavailable`).
    pub quarantined: bool,
    /// Panics since the last successful predict (or quarantine clear).
    pub consecutive_panics: u32,
    /// Panics over the model's lifetime in this process.
    pub total_panics: u64,
    /// Whether the drift detector has flagged the model's online
    /// accuracy as drifting. Advisory only: a drifting model keeps
    /// serving; the flag clears on admin `load`/`reload`.
    pub drifting: bool,
}

impl ModelHealth {
    /// Fresh state: every model healthy.
    pub fn new() -> Self {
        Self::default()
    }

    fn existing(&self, model: &str) -> Option<Arc<ModelState>> {
        self.states
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model)
            .cloned()
    }

    fn state(&self, model: &str) -> Arc<ModelState> {
        if let Some(state) = self.existing(model) {
            return state;
        }
        let mut states = self.states.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(states.entry(model.to_string()).or_default())
    }

    /// Record a caught predict panic. Returns `true` when this panic
    /// pushed the model *into* quarantine (consecutive count reached
    /// `threshold`); a threshold of 0 disables quarantine entirely.
    pub fn on_panic(&self, model: &str, threshold: u32) -> bool {
        let state = self.state(model);
        let consecutive = state.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        state.total.fetch_add(1, Ordering::Relaxed);
        threshold > 0
            && consecutive >= threshold
            && !state.quarantined.swap(true, Ordering::Relaxed)
    }

    /// Record a successful predict: resets the consecutive-panic count
    /// but leaves any existing quarantine in place.
    pub fn on_success(&self, model: &str) {
        if let Some(state) = self.existing(model) {
            state.consecutive.store(0, Ordering::Relaxed);
        }
    }

    /// Whether the model is currently quarantined.
    pub fn is_quarantined(&self, model: &str) -> bool {
        self.existing(model)
            .is_some_and(|state| state.quarantined.load(Ordering::Relaxed))
    }

    /// Latch the advisory drift flag for a model. Returns `true` when
    /// this call flipped the flag (it was not already set), so the
    /// caller can count distinct alarm edges.
    pub fn mark_drifting(&self, model: &str) -> bool {
        !self.state(model).drifting.swap(true, Ordering::Relaxed)
    }

    /// Whether the model's drift alarm is currently latched.
    pub fn is_drifting(&self, model: &str) -> bool {
        self.existing(model)
            .is_some_and(|state| state.drifting.load(Ordering::Relaxed))
    }

    /// Lift a quarantine (and any drift alarm) and zero the consecutive
    /// count — called when an admin `load`/`reload` installs a fresh
    /// copy of the model.
    pub fn clear(&self, model: &str) {
        if let Some(state) = self.existing(model) {
            state.consecutive.store(0, Ordering::Relaxed);
            state.quarantined.store(false, Ordering::Relaxed);
            state.drifting.store(false, Ordering::Relaxed);
        }
    }

    /// Health of one model; models with no recorded panics report all
    /// zeros.
    pub fn report_for(&self, model: &str) -> HealthReport {
        match self.existing(model) {
            Some(state) => HealthReport {
                model: model.to_string(),
                quarantined: state.quarantined.load(Ordering::Relaxed),
                consecutive_panics: state.consecutive.load(Ordering::Relaxed),
                total_panics: state.total.load(Ordering::Relaxed),
                drifting: state.drifting.load(Ordering::Relaxed),
            },
            None => HealthReport {
                model: model.to_string(),
                quarantined: false,
                consecutive_panics: 0,
                total_panics: 0,
                drifting: false,
            },
        }
    }

    /// How many models are currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.states
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|state| state.quarantined.load(Ordering::Relaxed))
            .count()
    }

    /// How many models currently have the drift alarm latched.
    pub fn drifting_count(&self) -> usize {
        self.states
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|state| state.drifting.load(Ordering::Relaxed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_reports_unarmed() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        for site in [
            FaultSite::WorkerPanic,
            FaultSite::WorkerAbort,
            FaultSite::SlowPredict,
            FaultSite::TornSnapshotWrite,
            FaultSite::StallReplyWrite,
            FaultSite::DropReply,
            FaultSite::DupReply,
            FaultSite::CancelRace,
        ] {
            assert!(!plan.fire(site, None));
            assert!(!plan.fire(site, Some("pair-tree")));
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn budget_is_exact_and_model_filter_applies() {
        let plan = FaultPlan::parse("worker_panic:model=pair-tree:count=2").unwrap();
        assert!(plan.is_armed());
        // Wrong model (or no model) never consumes the budget.
        assert!(!plan.fire(FaultSite::WorkerPanic, Some("nbag-tree")));
        assert!(!plan.fire(FaultSite::WorkerPanic, None));
        // Wrong site never consumes the budget.
        assert!(!plan.fire(FaultSite::SlowPredict, Some("pair-tree")));
        // Exactly `count` firings for the matching site+model.
        assert!(plan.fire(FaultSite::WorkerPanic, Some("pair-tree")));
        assert!(plan.fire(FaultSite::WorkerPanic, Some("pair-tree")));
        assert!(!plan.fire(FaultSite::WorkerPanic, Some("pair-tree")));
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn delays_parse_and_ride_along() {
        let plan =
            FaultPlan::parse("slow_predict:ms=250; stall_reply_write:count=3:ms=10").unwrap();
        assert_eq!(
            plan.fire_delay(FaultSite::SlowPredict, Some("any")),
            Some(Duration::from_millis(250))
        );
        assert_eq!(plan.fire_delay(FaultSite::SlowPredict, Some("any")), None);
        for _ in 0..3 {
            assert_eq!(
                plan.fire_delay(FaultSite::StallReplyWrite, None),
                Some(Duration::from_millis(10))
            );
        }
        assert_eq!(plan.fire_delay(FaultSite::StallReplyWrite, None), None);
        assert_eq!(plan.injected(), 4);
    }

    #[test]
    fn concurrent_firing_consumes_the_budget_exactly_once_each() {
        let plan = std::sync::Arc::new(FaultPlan::parse("worker_panic:count=5").unwrap());
        let fired: Vec<u32> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let plan = Arc::clone(&plan);
                    scope.spawn(move || {
                        let mut fired = 0u32;
                        for _ in 0..10 {
                            if plan.fire(FaultSite::WorkerPanic, None) {
                                fired += 1;
                            }
                        }
                        fired
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("firing thread panicked"))
                .collect()
        });
        assert_eq!(fired.iter().sum::<u32>(), 5);
        assert_eq!(plan.injected(), 5);
    }

    #[test]
    fn every_samples_matching_attempts_without_burning_budget() {
        // every=3, count=2: fires on the 3rd and 6th matching attempts
        // and never again; the skipped attempts cost no budget.
        let plan = FaultPlan::parse("slow_predict:every=3:count=2:ms=5").unwrap();
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.fire(FaultSite::SlowPredict, Some("pair-tree")))
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, false]
        );
        assert_eq!(plan.injected(), 2);
        // Round-trip sanity: the new reply-path sites parse and fire.
        let plan = FaultPlan::parse("drop_reply;dup_reply:count=2;cancel_race:ms=1").unwrap();
        assert!(plan.fire(FaultSite::DropReply, None));
        assert!(!plan.fire(FaultSite::DropReply, None));
        assert!(plan.fire(FaultSite::DupReply, None));
        assert_eq!(
            plan.fire_delay(FaultSite::CancelRace, None),
            Some(Duration::from_millis(1))
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for (spec, needle) in [
            ("explode", "unknown fault site"),
            ("worker_panic:boom", "key=value"),
            ("worker_panic:count=many", "bad count"),
            ("slow_predict:ms=fast", "bad ms"),
            ("slow_predict:every=0", "bad every"),
            ("slow_predict:every=often", "bad every"),
            ("worker_panic:color=red", "unknown fault key"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
        // Empty entries are tolerated so trailing semicolons don't error.
        assert!(!FaultPlan::parse("").unwrap().is_armed());
        assert!(!FaultPlan::parse(" ; ").unwrap().is_armed());
    }

    #[test]
    fn quarantine_latches_after_threshold_and_clears_on_demand() {
        let health = ModelHealth::new();
        assert!(!health.on_panic("pair-tree", 3));
        assert!(!health.on_panic("pair-tree", 3));
        // A success in between resets the consecutive count...
        health.on_success("pair-tree");
        assert!(!health.on_panic("pair-tree", 3));
        assert!(!health.on_panic("pair-tree", 3));
        assert!(!health.is_quarantined("pair-tree"));
        // ...so quarantine needs three in a row.
        assert!(health.on_panic("pair-tree", 3));
        assert!(health.is_quarantined("pair-tree"));
        assert_eq!(health.quarantined_count(), 1);
        // Later successes do NOT lift the quarantine.
        health.on_success("pair-tree");
        assert!(health.is_quarantined("pair-tree"));
        let report = health.report_for("pair-tree");
        assert!(report.quarantined);
        assert_eq!(report.total_panics, 5);
        // Other models are unaffected and report zeros.
        assert!(!health.is_quarantined("nbag-tree"));
        assert_eq!(health.report_for("nbag-tree").total_panics, 0);
        // An admin reload clears it.
        health.clear("pair-tree");
        assert!(!health.is_quarantined("pair-tree"));
        assert_eq!(health.quarantined_count(), 0);
        // Total panics survive the clear; consecutive does not.
        let report = health.report_for("pair-tree");
        assert_eq!(report.total_panics, 5);
        assert_eq!(report.consecutive_panics, 0);
    }

    #[test]
    fn drift_flag_latches_once_and_clears_with_quarantine() {
        let health = ModelHealth::new();
        assert!(!health.is_drifting("pair-tree"));
        assert_eq!(health.drifting_count(), 0);
        // First mark flips the flag; later marks are no-ops.
        assert!(health.mark_drifting("pair-tree"));
        assert!(!health.mark_drifting("pair-tree"));
        assert!(health.is_drifting("pair-tree"));
        assert_eq!(health.drifting_count(), 1);
        let report = health.report_for("pair-tree");
        assert!(report.drifting);
        // Advisory: drifting does NOT imply quarantined.
        assert!(!report.quarantined);
        assert!(!health.is_quarantined("pair-tree"));
        // Successful predicts never lift the alarm...
        health.on_success("pair-tree");
        assert!(health.is_drifting("pair-tree"));
        // ...only the admin clear (load/reload) does.
        health.clear("pair-tree");
        assert!(!health.is_drifting("pair-tree"));
        assert_eq!(health.drifting_count(), 0);
        // And it can latch again afterwards.
        assert!(health.mark_drifting("pair-tree"));
    }

    #[test]
    fn threshold_zero_disables_quarantine() {
        let health = ModelHealth::new();
        for _ in 0..10 {
            assert!(!health.on_panic("pair-tree", 0));
        }
        assert!(!health.is_quarantined("pair-tree"));
    }

    #[test]
    fn panic_messages_extract_str_and_string_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static message");
        let caught = std::panic::catch_unwind(|| panic!("{} {}", "formatted", 42)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 42");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(7u64)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "<non-string panic payload>");
    }
}
