//! The line-delimited wire protocol spoken by the TCP server.
//!
//! One request per line, one reply line per request. Requests:
//!
//! ```text
//! predict [model=NAME] APP@BATCH+APP@BATCH[+APP@BATCH[+APP@BATCH]]
//! schedule [model=NAME] k=GPUS budget=SECONDS APP@BATCH [APP@BATCH ...]
//! stats [model=NAME]
//! observe id=REQUEST_ID actual_us=MICROS
//! cancel id=REQUEST_ID
//! models
//! health
//! metrics
//! trace
//! load model=NAME path=FILE
//! save [model=NAME] [path=DEST]
//! reload model=NAME [path=FILE]
//! ```
//!
//! Any request may additionally carry `deadline_ms=N`: a freshness
//! budget, measured from parse time. A request still queued when its
//! deadline passes is shed at dequeue with `err deadline` instead of
//! being served stale ([`parse_request_options`] strips the option
//! before verb dispatch, so it composes with every verb). Likewise
//! `prio=high|normal|low` (default `normal`) picks the brownout class:
//! under queue pressure a shard sheds `low` first, then `normal`, and
//! `high` only at the hard capacity bound. `hedge_of=N` names an
//! earlier attempt's request id: on a multiplexed (binary) connection
//! the engine links the two into a hedge pair whose served attempt
//! counts exactly once; on a plain text connection there is no wire id
//! to link, so the option is accepted and ignored.
//!
//! `cancel id=<req>` cancels an earlier tagged request by its
//! client-assigned id. A still-queued target is dropped at dequeue with
//! `err cancelled`; the cancel itself always answers `ok
//! cancel=pending` (the target was in flight) or `ok cancel=late` (it
//! had already completed or was never seen) — hedging clients cancel
//! their losing attempt constantly, so late cancels are counted, never
//! punished.
//!
//! `health` reports per-model panic/quarantine state — one
//! `<name>=<ok|quarantined|drifting>:<consecutive>/<total>` token per
//! registered model (see [`crate::fault::ModelHealth`]). `drifting` is
//! the advisory accuracy alarm set when the online residual stream
//! shifts (quarantine wins when both are latched). It is deliberately
//! *not* admin-gated: a load balancer must be able to probe it.
//!
//! `observe` closes the prediction loop: after acting on a prediction
//! the client reports the runtime it actually measured, naming the
//! prediction by the binary protocol's request id. The reply is `ok
//! outcome=matched` when the report joined a recorded prediction and
//! `ok outcome=orphaned` when the id was unknown, already consumed, or
//! evicted — late feedback is counted, never an error. Not admin-gated:
//! closing the loop is for every client. Only predictions served over
//! the binary protocol carry an id the engine can join on, so text-only
//! clients' reports always come back orphaned.
//!
//! `load` registers (or replaces) a model from a checksummed snapshot
//! file; `save` writes one model to a file or, without `model=`, every
//! model to a directory; `reload` atomically swaps an already-registered
//! model with a fresh decode of its snapshot. These three are **admin
//! commands**: they touch the server's filesystem, so the TCP listener
//! refuses them with `err admin disabled` unless it was started in admin
//! mode (`repro serve --admin`), and even then every path — explicit or
//! derived — is confined to the configured snapshot directory: relative
//! paths resolve inside it, absolute paths must already lie inside it,
//! `..` components are rejected, and model names are restricted to
//! `[A-Za-z0-9._-]`. `save`/`reload` fall back to
//! `<snapshot_dir>/<model>.bagsnap` when `path=` is omitted. Paths must
//! not contain whitespace (the protocol is whitespace-tokenized).
//!
//! `metrics` renders every counter and histogram as a multi-line
//! Prometheus text document terminated by a `# EOF` line — the one reply
//! that is not a single line; read until `# EOF`. `trace` dumps the
//! slow-request ring: a first `ok traces=N` line followed by one `trace
//! seq=... total_us=... stages=stage:us,...` line per captured request,
//! oldest first. `trace` is admin-gated like `load`/`save`/`reload`
//! (span breakdowns reveal other clients' request contents and timing).
//!
//! Replies start with `ok ` or `err `:
//!
//! ```text
//! ok model=pair-tree predicted_s=1.2345
//! ok k=2 gpu0=SIFT@20+KNN@40 pred0=1.2 gpu1=ORB@10 pred1=0.4 rejected=-
//! ok requests=9 ok=9 err=0 shed=0 cache_hits=12 ... latency_us_p95=1875
//! ok model=pair-tree requests=9 ok=9 err=0 latency_samples=9 ... latency_us_max=211
//! ok models=2 pair-tree=pair/tree nbag-tree=nbag/tree
//! ok models=2 nbag-tree=ok:0/0 pair-tree=quarantined:3/5 pressure=0/64 shed_high=0 shed_normal=0 shed_low=0
//! ok cancel=pending
//! ok loaded model=custom kind=pair/tree replaced=false
//! ok saved model=pair-tree dest=/tmp/m.bagsnap
//! ok saved models=2 dest=/tmp/models
//! ok reloaded model=pair-tree kind=pair/tree
//! err bad request: unknown benchmark `sfit`
//! err internal: model `pair-tree` panicked while predicting: ...
//! err unavailable: model `pair-tree` is quarantined after repeated panics; reload it to restore service
//! err deadline: request expired before a worker picked it up
//! ```
//!
//! Predictions are formatted with [`fmt_f64`], Rust's shortest-roundtrip
//! float formatting, so the wire value parses back to the exact bits the
//! model produced — the integration tests assert byte-identity against
//! the offline predictor.

use crate::engine::{Reply, Request, StatsReport};
use crate::error::ServeError;
use crate::metrics::Priority;
use bagpred_core::nbag::MAX_BAG;
use bagpred_ml::codec::fmt_f64;
use bagpred_workloads::Workload;
use std::time::Duration;

fn parse_workload(spec: &str) -> Result<Workload, ServeError> {
    let (name, batch) = spec.split_once('@').ok_or_else(|| {
        ServeError::BadRequest(format!("expected APP@BATCH (e.g. SIFT@20), got `{spec}`"))
    })?;
    let benchmark = name
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("unknown benchmark `{name}`")))?;
    let batch: usize = batch
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("batch size `{batch}` is not an integer")))?;
    if batch == 0 {
        return Err(ServeError::BadRequest("batch size must be positive".into()));
    }
    Ok(Workload::new(benchmark, batch))
}

fn parse_bag(spec: &str) -> Result<Vec<Workload>, ServeError> {
    let apps: Vec<Workload> = spec
        .split('+')
        .map(parse_workload)
        .collect::<Result<_, _>>()?;
    if !(2..=MAX_BAG).contains(&apps.len()) {
        return Err(ServeError::BadRequest(format!(
            "a bag holds 2..={MAX_BAG} apps joined by `+`, got {}",
            apps.len()
        )));
    }
    Ok(apps)
}

/// Splits off a leading `key=value` token when `key` matches.
fn take_kv<'a>(tokens: &mut Vec<&'a str>, key: &str) -> Option<&'a str> {
    let pos = tokens
        .iter()
        .position(|t| t.split_once('=').is_some_and(|(k, _)| k == key))?;
    let (_, value) = tokens.remove(pos).split_once('=').expect("matched above");
    Some(value)
}

/// Per-request options that ride alongside any verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Freshness budget from `deadline_ms=N`: how long the request may
    /// wait before a worker picks it up. `None` means wait forever.
    pub deadline: Option<Duration>,
    /// Brownout class from `prio=high|normal|low` (default `normal`):
    /// which shedding watermark the request enqueues under.
    pub priority: Priority,
    /// Hedge link from `hedge_of=N`: the request id of the earlier
    /// attempt this one is a hedge of, so the engine can deduplicate
    /// the pair's accounting. Only meaningful on tagged (binary
    /// protocol) submissions.
    pub hedge_of: Option<u64>,
}

/// Parses one request line.
///
/// Convenience wrapper over [`parse_request_options`] that discards the
/// options — for callers (and tests) that only care about the verb.
///
/// # Errors
///
/// [`ServeError::BadRequest`] describing exactly what failed to parse.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    parse_request_options(line).map(|(request, _)| request)
}

/// Parses one request line plus its cross-verb options.
///
/// `deadline_ms=N` is stripped before verb dispatch, so it is accepted
/// (and honoured) on every request kind.
///
/// # Errors
///
/// [`ServeError::BadRequest`] describing exactly what failed to parse.
pub fn parse_request_options(line: &str) -> Result<(Request, RequestOptions), ServeError> {
    let mut tokens: Vec<&str> = line.split_whitespace().collect();
    let Some(verb) = tokens.first().copied() else {
        return Err(ServeError::BadRequest("empty request".into()));
    };
    tokens.remove(0);
    let mut options = RequestOptions::default();
    if let Some(raw) = take_kv(&mut tokens, "deadline_ms") {
        let ms: u64 = raw.parse().map_err(|_| {
            ServeError::BadRequest(format!(
                "deadline_ms `{raw}` is not a non-negative integer of milliseconds"
            ))
        })?;
        options.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(raw) = take_kv(&mut tokens, "prio") {
        options.priority = Priority::from_name(raw).ok_or_else(|| {
            ServeError::BadRequest(format!("prio `{raw}` is not one of high, normal, low"))
        })?;
    }
    if let Some(raw) = take_kv(&mut tokens, "hedge_of") {
        let id: u64 = raw
            .parse()
            .map_err(|_| ServeError::BadRequest(format!("hedge_of `{raw}` is not a request id")))?;
        options.hedge_of = Some(id);
    }
    let request = match verb {
        "predict" => {
            let model = take_kv(&mut tokens, "model").map(str::to_string);
            match tokens.as_slice() {
                [bag] => Ok(Request::Predict {
                    model,
                    apps: parse_bag(bag)?,
                }),
                [] => Err(ServeError::BadRequest(
                    "predict needs a bag: predict SIFT@20+KNN@40".into(),
                )),
                _ => Err(ServeError::BadRequest(
                    "predict takes one bag; join apps with `+`".into(),
                )),
            }
        }
        "schedule" => {
            let model = take_kv(&mut tokens, "model").map(str::to_string);
            let gpus: usize = take_kv(&mut tokens, "k")
                .ok_or_else(|| ServeError::BadRequest("schedule needs k=<gpus>".into()))?
                .parse()
                .map_err(|_| ServeError::BadRequest("k must be an integer".into()))?;
            let budget_s: f64 = take_kv(&mut tokens, "budget")
                .ok_or_else(|| ServeError::BadRequest("schedule needs budget=<seconds>".into()))?
                .parse()
                .map_err(|_| ServeError::BadRequest("budget must be a number".into()))?;
            if tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "schedule needs at least one APP@BATCH".into(),
                ));
            }
            let apps = tokens
                .iter()
                .map(|t| parse_workload(t))
                .collect::<Result<_, _>>()?;
            Ok(Request::Schedule {
                model,
                gpus,
                budget_s,
                apps,
            })
        }
        "stats" => {
            let model = take_kv(&mut tokens, "model").map(str::to_string);
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "stats takes no arguments beyond model=NAME".into(),
                ));
            }
            Ok(Request::Stats { model })
        }
        "observe" => {
            let id: u64 = take_kv(&mut tokens, "id")
                .ok_or_else(|| ServeError::BadRequest("observe needs id=<request id>".into()))?
                .parse()
                .map_err(|_| ServeError::BadRequest("id must be a non-negative integer".into()))?;
            let actual_us: u64 = take_kv(&mut tokens, "actual_us")
                .ok_or_else(|| {
                    ServeError::BadRequest("observe needs actual_us=<microseconds>".into())
                })?
                .parse()
                .map_err(|_| {
                    ServeError::BadRequest(
                        "actual_us must be a non-negative integer of microseconds".into(),
                    )
                })?;
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "observe takes id=N actual_us=N and nothing else".into(),
                ));
            }
            Ok(Request::Observe { id, actual_us })
        }
        "cancel" => {
            let id: u64 = take_kv(&mut tokens, "id")
                .ok_or_else(|| ServeError::BadRequest("cancel needs id=<request id>".into()))?
                .parse()
                .map_err(|_| ServeError::BadRequest("id must be a non-negative integer".into()))?;
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "cancel takes id=N and nothing else".into(),
                ));
            }
            Ok(Request::Cancel { id })
        }
        "models" if tokens.is_empty() => Ok(Request::Models),
        "models" => Err(ServeError::BadRequest("models takes no arguments".into())),
        "health" if tokens.is_empty() => Ok(Request::Health),
        "health" => Err(ServeError::BadRequest("health takes no arguments".into())),
        "metrics" if tokens.is_empty() => Ok(Request::Metrics),
        "metrics" => Err(ServeError::BadRequest("metrics takes no arguments".into())),
        "trace" if tokens.is_empty() => Ok(Request::Trace),
        "trace" => Err(ServeError::BadRequest("trace takes no arguments".into())),
        "load" => {
            let model = take_kv(&mut tokens, "model")
                .ok_or_else(|| ServeError::BadRequest("load needs model=NAME".into()))?
                .to_string();
            let path = take_kv(&mut tokens, "path")
                .ok_or_else(|| ServeError::BadRequest("load needs path=FILE".into()))?
                .to_string();
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "load takes model=NAME path=FILE and nothing else".into(),
                ));
            }
            Ok(Request::Load { model, path })
        }
        "save" => {
            let model = take_kv(&mut tokens, "model").map(str::to_string);
            let dest = take_kv(&mut tokens, "path").map(str::to_string);
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "save takes [model=NAME] [path=DEST] and nothing else".into(),
                ));
            }
            Ok(Request::Save { model, dest })
        }
        "reload" => {
            let model = take_kv(&mut tokens, "model")
                .ok_or_else(|| ServeError::BadRequest("reload needs model=NAME".into()))?
                .to_string();
            let path = take_kv(&mut tokens, "path").map(str::to_string);
            if !tokens.is_empty() {
                return Err(ServeError::BadRequest(
                    "reload takes model=NAME [path=FILE] and nothing else".into(),
                ));
            }
            Ok(Request::Reload { model, path })
        }
        other => Err(ServeError::BadRequest(format!(
            "unknown command `{other}` \
             (try: predict, schedule, stats, observe, cancel, models, health, metrics, \
             trace, load, save, reload)"
        ))),
    }?;
    Ok((request, options))
}

fn format_workload(w: &Workload) -> String {
    format!("{}@{}", w.benchmark().name(), w.batch_size())
}

/// Formats one latency summary as `<prefix>_samples=... <prefix>_us_min=...`
/// key-value pairs. Quantiles use the nearest-rank semantics documented
/// on [`bagpred_obs::HistogramSnapshot::quantile`].
fn format_summary(prefix: &str, s: &crate::metrics::LatencySummary) -> String {
    format!(
        "{prefix}_samples={} {prefix}_us_min={} {prefix}_us_mean={:.1} \
         {prefix}_us_p50={} {prefix}_us_p95={} {prefix}_us_p99={} {prefix}_us_max={}",
        s.samples, s.min_us, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us,
    )
}

fn format_stats(s: &StatsReport) -> String {
    let m = &s.metrics;
    let mut out = format!(
        "requests={} ok={} err={} shed={} queue_depth={} workers={} models={} \
         slow_captured={} \
         cache_hits={} cache_misses={} cache_hit_rate={:.4} cache_entries={} \
         cache_evictions={}",
        m.received,
        m.succeeded,
        m.failed,
        m.shed,
        s.queue_depth,
        s.workers,
        s.models,
        s.slow_captured,
        s.cache_hits,
        s.cache_misses,
        s.cache_hit_rate,
        s.cache_entries,
        s.cache_evictions,
    );
    out.push_str(&format!(
        " worker_panics={} worker_respawns={} deadline_expired={} quarantines={} \
         quarantined_models={} faults_injected={}",
        s.worker_panics,
        s.worker_respawns,
        s.deadline_expired,
        s.quarantines,
        s.quarantined_models,
        s.faults_injected,
    ));
    out.push_str(&format!(
        " outcomes_matched={} outcomes_orphaned={} outcomes_expired={} outcomes_pending={} \
         drift_alarms={} drifting_models={}",
        s.outcomes_matched,
        s.outcomes_orphaned,
        s.outcomes_expired,
        s.outcomes_pending,
        s.drift_alarms,
        s.drifting_models,
    ));
    out.push_str(&format!(
        " cancelled={} cancel_late={} hedge_deduped={}",
        s.cancelled, s.cancel_late, s.hedge_deduped,
    ));
    for (prio, shed) in Priority::ALL.iter().zip(s.brownout_shed) {
        out.push_str(&format!(" brownout_shed_{}={shed}", prio.name()));
    }
    for map in &s.cache_maps {
        out.push_str(&format!(
            " cache_{0}_hits={1} cache_{0}_misses={2} cache_{0}_evictions={3} \
             cache_{0}_entries={4}",
            map.name, map.hits, map.misses, map.evictions, map.entries,
        ));
    }
    out.push(' ');
    out.push_str(&format_summary("latency", &m.latency));
    out.push(' ');
    out.push_str(&format_summary("queue_wait", &m.queue_wait));
    out.push(' ');
    out.push_str(&format_summary("service", &m.service));
    out.push_str(&format!(" shards={}", s.shards.len()));
    for shard in &s.shards {
        out.push_str(&format!(
            " shard_{0}_depth={1} shard_{0}_enqueued={2} shard_{0}_served={3} \
             shard_{0}_shed={4} shard_{0}_wait_p99_us={5}",
            shard.name,
            shard.queue_depth,
            shard.enqueued,
            shard.served,
            shard.shed,
            shard.queue_wait.p99_us,
        ));
    }
    out
}

/// Formats the reply line (without the trailing newline).
pub fn format_outcome(outcome: &Result<Reply, ServeError>) -> String {
    match outcome {
        Err(err) => format!("err {err}"),
        Ok(Reply::Prediction { model, predicted_s }) => {
            format!("ok model={model} predicted_s={}", fmt_f64(*predicted_s))
        }
        Ok(Reply::Schedule(placement)) => {
            let mut out = format!("ok k={}", placement.gpus.len());
            for (idx, gpu) in placement.gpus.iter().enumerate() {
                let apps = if gpu.apps.is_empty() {
                    "-".to_string()
                } else {
                    gpu.apps
                        .iter()
                        .map(format_workload)
                        .collect::<Vec<_>>()
                        .join("+")
                };
                out.push_str(&format!(
                    " gpu{idx}={apps} pred{idx}={}",
                    fmt_f64(gpu.predicted_s)
                ));
            }
            let rejected = if placement.rejected.is_empty() {
                "-".to_string()
            } else {
                placement
                    .rejected
                    .iter()
                    .map(format_workload)
                    .collect::<Vec<_>>()
                    .join("+")
            };
            out.push_str(&format!(" rejected={rejected}"));
            out
        }
        Ok(Reply::Stats(stats)) => format!("ok {}", format_stats(stats)),
        Ok(Reply::ModelStats {
            model,
            metrics: m,
            shard,
        }) => {
            let mut out = format!(
                "ok model={model} requests={} ok={} err={} {} {} {}",
                m.received,
                m.succeeded,
                m.failed,
                format_summary("latency", &m.latency),
                format_summary("queue_wait", &m.queue_wait),
                format_summary("service", &m.service),
            );
            // The queue this model's jobs actually waited in: its own
            // shard when the engine is sharded, the shared control shard
            // otherwise — so `shard_wait` percentiles are attributable,
            // unlike the old shared-queue `queue_wait` which mixed every
            // model's waits together.
            if let Some(s) = shard {
                out.push_str(&format!(
                    " shard={} shard_depth={} shard_enqueued={} shard_served={} shard_shed={} {}",
                    s.name,
                    s.queue_depth,
                    s.enqueued,
                    s.served,
                    s.shed,
                    format_summary("shard_wait", &s.queue_wait),
                ));
            }
            out
        }
        Ok(Reply::Loaded {
            model,
            desc,
            replaced,
        }) => format!("ok loaded model={model} kind={desc} replaced={replaced}"),
        Ok(Reply::Saved { model, count, dest }) => match model {
            Some(model) => format!("ok saved model={model} dest={dest}"),
            None => format!("ok saved models={count} dest={dest}"),
        },
        Ok(Reply::Reloaded { model, desc }) => {
            format!("ok reloaded model={model} kind={desc}")
        }
        Ok(Reply::Observed { matched }) => {
            let joined = if *matched { "matched" } else { "orphaned" };
            format!("ok outcome={joined}")
        }
        Ok(Reply::Models(models)) => {
            let mut out = format!("ok models={}", models.len());
            for (name, desc) in models {
                out.push_str(&format!(" {name}={desc}"));
            }
            out
        }
        Ok(Reply::Health { reports, pressure }) => {
            let mut out = format!("ok models={}", reports.len());
            for r in reports {
                // Quarantine (serving suspended) outranks drift (advisory
                // accuracy alarm) when both are latched.
                let state = if r.quarantined {
                    "quarantined"
                } else if r.drifting {
                    "drifting"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    " {}={state}:{}/{}",
                    r.model, r.consecutive_panics, r.total_panics
                ));
            }
            // Brownout pressure: the deepest queue against its capacity,
            // plus cumulative sheds per priority class — what a load
            // balancer needs to steer low-priority traffic away early.
            out.push_str(&format!(
                " pressure={}/{}",
                pressure.max_depth, pressure.queue_capacity
            ));
            for (prio, shed) in Priority::ALL.iter().zip(pressure.shed) {
                out.push_str(&format!(" shed_{}={shed}", prio.name()));
            }
            out
        }
        Ok(Reply::Cancelled { pending }) => {
            let state = if *pending { "pending" } else { "late" };
            format!("ok cancel={state}")
        }
        // The exposition document is the one multi-line reply: it is
        // written verbatim and already ends with its own `# EOF`
        // sentinel, so clients read until that line rather than one line.
        Ok(Reply::Metrics(text)) => text.trim_end_matches('\n').to_string(),
        Ok(Reply::Traces(events)) => {
            let mut out = format!("ok traces={}", events.len());
            for event in events {
                out.push('\n');
                out.push_str(&format_trace(event));
            }
            out
        }
    }
}

/// One `trace ...` line of the `trace` reply: sequence number, total
/// latency, and the comma-joined `stage:us` span breakdown, followed by
/// the request summary (which may contain spaces, so it comes last).
fn format_trace(event: &bagpred_obs::SlowEvent) -> String {
    let stages = if event.stages.is_empty() {
        "-".to_string()
    } else {
        event
            .stages
            .iter()
            .map(|(stage, d)| format!("{}:{}", stage.name(), d.as_micros()))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "trace seq={} total_us={} stages={stages} req={}",
        event.seq,
        event.total.as_micros(),
        event.summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_workloads::Benchmark;

    fn workload(b: Benchmark, n: usize) -> Workload {
        Workload::new(b, n)
    }

    #[test]
    fn parses_predict_with_and_without_model() {
        let req = parse_request("predict SIFT@20+KNN@40").expect("parses");
        assert_eq!(
            req,
            Request::Predict {
                model: None,
                apps: vec![workload(Benchmark::Sift, 20), workload(Benchmark::Knn, 40)],
            }
        );
        let req = parse_request("predict model=pair-tree sift@20+knn@40").expect("parses");
        let Request::Predict { model, apps } = req else {
            panic!()
        };
        assert_eq!(model.as_deref(), Some("pair-tree"));
        assert_eq!(apps.len(), 2);
    }

    #[test]
    fn parses_schedule() {
        let req = parse_request("schedule k=2 budget=1.5 SIFT@20 KNN@40 ORB@10").expect("parses");
        let Request::Schedule {
            model,
            gpus,
            budget_s,
            apps,
        } = req
        else {
            panic!()
        };
        assert_eq!(model, None);
        assert_eq!(gpus, 2);
        assert_eq!(budget_s, 1.5);
        assert_eq!(apps.len(), 3);
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("frobnicate", "unknown command"),
            ("predict", "needs a bag"),
            ("predict SIFT@20", "2..="),
            ("predict SIFT@20+KNN@40+HOG@20+FAST@20+ORB@10", "2..="),
            ("predict SFIT@20+KNN@40", "unknown benchmark"),
            ("predict SIFT@x+KNN@40", "not an integer"),
            ("predict SIFT+KNN@40", "APP@BATCH"),
            ("predict SIFT@0+KNN@40", "positive"),
            ("schedule budget=1 SIFT@20", "k="),
            ("schedule k=2 SIFT@20", "budget="),
            ("schedule k=2 budget=1", "at least one"),
            ("stats now", "no arguments"),
            ("cancel", "id="),
            ("cancel id=soon", "integer"),
            ("cancel id=7 junk", "nothing else"),
            ("models all", "no arguments"),
            ("metrics now", "no arguments"),
            ("trace all", "no arguments"),
            ("load path=/tmp/x.bagsnap", "model=NAME"),
            ("load model=x", "path=FILE"),
            ("load model=x path=/tmp/x extra", "nothing else"),
            ("save everything", "nothing else"),
            ("reload path=/tmp/x.bagsnap", "model=NAME"),
            ("reload model=x junk", "nothing else"),
        ] {
            let err = parse_request(line).expect_err(line);
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "`{line}` -> `{msg}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn deadline_ms_composes_with_any_verb_and_rejects_garbage() {
        let (req, opts) =
            parse_request_options("predict deadline_ms=250 SIFT@20+KNN@40").expect("parses");
        assert!(matches!(req, Request::Predict { .. }));
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(250)));

        // Position is irrelevant: it is a key-value option, not a verb arg.
        let (req, opts) =
            parse_request_options("stats model=pair-tree deadline_ms=10").expect("parses");
        assert!(matches!(req, Request::Stats { .. }));
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(10)));

        let (_, opts) = parse_request_options("models").expect("parses");
        assert_eq!(opts.deadline, None);

        for bad in [
            "predict deadline_ms=soon SIFT@20+KNN@40",
            "stats deadline_ms=-1",
        ] {
            let err = parse_request_options(bad).expect_err(bad);
            assert!(err.to_string().contains("deadline_ms"), "{err}");
        }
    }

    #[test]
    fn parses_health_and_formats_its_reply() {
        assert_eq!(parse_request("health").expect("parses"), Request::Health);
        assert!(
            !Request::Health.is_admin(),
            "load balancers must be able to probe health"
        );
        let err = parse_request("health now").expect_err("rejects args");
        assert!(err.to_string().contains("no arguments"), "{err}");

        use crate::fault::HealthReport;
        use crate::metrics::BrownoutPressure;
        let line = format_outcome(&Ok(Reply::Health {
            reports: vec![
                HealthReport {
                    model: "nbag-tree".into(),
                    quarantined: false,
                    drifting: false,
                    consecutive_panics: 0,
                    total_panics: 0,
                },
                HealthReport {
                    model: "pair-tree".into(),
                    quarantined: true,
                    // Quarantine outranks drift in the rendered state.
                    drifting: true,
                    consecutive_panics: 3,
                    total_panics: 5,
                },
                HealthReport {
                    model: "stale-tree".into(),
                    quarantined: false,
                    drifting: true,
                    consecutive_panics: 0,
                    total_panics: 1,
                },
            ],
            pressure: BrownoutPressure {
                shed: [0, 2, 9],
                max_depth: 48,
                queue_capacity: 64,
            },
        }));
        assert_eq!(
            line,
            "ok models=3 nbag-tree=ok:0/0 pair-tree=quarantined:3/5 stale-tree=drifting:0/1 \
             pressure=48/64 shed_high=0 shed_normal=2 shed_low=9"
        );
    }

    #[test]
    fn parses_cancel_and_formats_its_reply() {
        assert_eq!(
            parse_request("cancel id=42").expect("parses"),
            Request::Cancel { id: 42 }
        );
        assert!(
            !Request::Cancel { id: 42 }.is_admin(),
            "hedging clients cancel their losers constantly"
        );
        assert_eq!(
            format_outcome(&Ok(Reply::Cancelled { pending: true })),
            "ok cancel=pending"
        );
        assert_eq!(
            format_outcome(&Ok(Reply::Cancelled { pending: false })),
            "ok cancel=late"
        );
    }

    #[test]
    fn prio_composes_with_any_verb_and_rejects_garbage() {
        let (req, opts) = parse_request_options("predict prio=low SIFT@20+KNN@40").expect("parses");
        assert!(matches!(req, Request::Predict { .. }));
        assert_eq!(opts.priority, Priority::Low);

        // Composes with deadline_ms; position is irrelevant.
        let (_, opts) = parse_request_options("predict SIFT@20+KNN@40 deadline_ms=50 prio=high")
            .expect("parses");
        assert_eq!(opts.priority, Priority::High);
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(50)));

        let (_, opts) = parse_request_options("predict SIFT@20+KNN@40").expect("parses");
        assert_eq!(opts.priority, Priority::Normal, "default is normal");

        let err = parse_request_options("predict prio=urgent SIFT@20+KNN@40")
            .expect_err("rejects garbage");
        assert!(err.to_string().contains("prio"), "{err}");
    }

    #[test]
    fn parses_observe_and_formats_its_reply() {
        assert_eq!(
            parse_request("observe id=7 actual_us=1500").expect("parses"),
            Request::Observe {
                id: 7,
                actual_us: 1500
            }
        );
        // Key-value tokens, so order is irrelevant.
        assert_eq!(
            parse_request("observe actual_us=1500 id=7").expect("parses"),
            Request::Observe {
                id: 7,
                actual_us: 1500
            }
        );
        assert!(
            !Request::Observe {
                id: 7,
                actual_us: 1500
            }
            .is_admin(),
            "closing the loop is for every client"
        );
        for (line, needle) in [
            ("observe actual_us=1500", "id="),
            ("observe id=7", "actual_us="),
            ("observe id=soon actual_us=1", "integer"),
            ("observe id=7 actual_us=fast", "integer"),
            ("observe id=7 actual_us=1 junk", "nothing else"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.to_string().contains(needle), "`{line}` -> `{err}`");
        }
        assert_eq!(
            format_outcome(&Ok(Reply::Observed { matched: true })),
            "ok outcome=matched"
        );
        assert_eq!(
            format_outcome(&Ok(Reply::Observed { matched: false })),
            "ok outcome=orphaned"
        );
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(parse_request("metrics").expect("parses"), Request::Metrics);
        assert_eq!(parse_request("trace").expect("parses"), Request::Trace);
        assert!(Request::Trace.is_admin(), "trace dumps cross-client data");
        assert!(!Request::Metrics.is_admin(), "metrics is aggregate-only");
    }

    #[test]
    fn metrics_and_trace_replies_format_as_documented() {
        let line = format_outcome(&Ok(Reply::Metrics(
            "# HELP x y\n# TYPE x counter\nx 1\n# EOF\n".into(),
        )));
        assert_eq!(line, "# HELP x y\n# TYPE x counter\nx 1\n# EOF");

        let line = format_outcome(&Ok(Reply::Traces(vec![])));
        assert_eq!(line, "ok traces=0");

        use bagpred_obs::{SlowEvent, Stage};
        use std::time::Duration;
        let line = format_outcome(&Ok(Reply::Traces(vec![SlowEvent {
            seq: 7,
            summary: "predict model=pair-tree SIFT@20+KNN@40".into(),
            total: Duration::from_micros(1500),
            stages: vec![
                (Stage::QueueWait, Duration::from_micros(400)),
                (Stage::Predict, Duration::from_micros(900)),
            ],
        }])));
        assert_eq!(
            line,
            "ok traces=1\ntrace seq=7 total_us=1500 \
             stages=queue_wait:400,predict:900 \
             req=predict model=pair-tree SIFT@20+KNN@40"
        );
    }

    #[test]
    fn parses_stats_and_lifecycle_commands() {
        assert_eq!(
            parse_request("stats").expect("parses"),
            Request::Stats { model: None }
        );
        assert_eq!(
            parse_request("stats model=pair-tree").expect("parses"),
            Request::Stats {
                model: Some("pair-tree".into())
            }
        );
        assert_eq!(
            parse_request("load model=custom path=/tmp/m.bagsnap").expect("parses"),
            Request::Load {
                model: "custom".into(),
                path: "/tmp/m.bagsnap".into()
            }
        );
        assert_eq!(
            parse_request("save").expect("parses"),
            Request::Save {
                model: None,
                dest: None
            }
        );
        assert_eq!(
            parse_request("save model=pair-tree path=/tmp/m.bagsnap").expect("parses"),
            Request::Save {
                model: Some("pair-tree".into()),
                dest: Some("/tmp/m.bagsnap".into())
            }
        );
        assert_eq!(
            parse_request("reload model=pair-tree").expect("parses"),
            Request::Reload {
                model: "pair-tree".into(),
                path: None
            }
        );
    }

    #[test]
    fn lifecycle_and_model_stats_replies_format_as_documented() {
        let line = format_outcome(&Ok(Reply::Loaded {
            model: "custom".into(),
            desc: "pair/tree".into(),
            replaced: false,
        }));
        assert_eq!(line, "ok loaded model=custom kind=pair/tree replaced=false");

        let line = format_outcome(&Ok(Reply::Saved {
            model: Some("pair-tree".into()),
            count: 1,
            dest: "/tmp/m.bagsnap".into(),
        }));
        assert_eq!(line, "ok saved model=pair-tree dest=/tmp/m.bagsnap");

        let line = format_outcome(&Ok(Reply::Saved {
            model: None,
            count: 2,
            dest: "/tmp/models".into(),
        }));
        assert_eq!(line, "ok saved models=2 dest=/tmp/models");

        let line = format_outcome(&Ok(Reply::Reloaded {
            model: "pair-tree".into(),
            desc: "pair/tree".into(),
        }));
        assert_eq!(line, "ok reloaded model=pair-tree kind=pair/tree");

        let line = format_outcome(&Ok(Reply::ModelStats {
            model: "pair-tree".into(),
            metrics: Box::new(crate::Metrics::new().snapshot()),
            shard: None,
        }));
        assert!(
            line.starts_with("ok model=pair-tree requests=0 ok=0 err=0"),
            "{line}"
        );
        assert!(line.contains("latency_us_p95=0"), "{line}");
        assert!(!line.contains("shard="), "{line}");

        let line = format_outcome(&Ok(Reply::ModelStats {
            model: "pair-tree".into(),
            metrics: Box::new(crate::Metrics::new().snapshot()),
            shard: Some(Box::new(
                crate::metrics::ShardCounters::new().snapshot("pair-tree", 3),
            )),
        }));
        assert!(
            line.contains("shard=pair-tree shard_depth=3 shard_enqueued=0"),
            "{line}"
        );
        assert!(line.contains("shard_wait_us_p99=0"), "{line}");
    }

    #[test]
    fn prediction_reply_round_trips_float_exactly() {
        let value = 1.234_567_890_123_456_7_f64 / 3.0;
        let line = format_outcome(&Ok(Reply::Prediction {
            model: "pair-tree".into(),
            predicted_s: value,
        }));
        let parsed: f64 = line
            .rsplit_once("predicted_s=")
            .expect("has field")
            .1
            .parse()
            .expect("parses back");
        assert_eq!(parsed.to_bits(), value.to_bits());
    }

    #[test]
    fn error_outcomes_format_as_err_lines() {
        let line = format_outcome(&Err(crate::ServeError::Overloaded));
        assert!(line.starts_with("err "), "{line}");
        assert!(line.contains("overloaded"), "{line}");
    }
}
