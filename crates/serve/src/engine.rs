//! The concurrent request engine: per-model shards, each a bounded
//! queue feeding its own worker set.
//!
//! Requests enter through [`PredictionService::submit`] (async, returns a
//! channel) or [`PredictionService::call`] (blocking convenience). Each
//! registered model owns a [`Shard`]: a bounded queue + condvar with
//! [`ServiceConfig::workers`] dedicated workers, so a slow or
//! quarantined model fills *its* queue and sheds *its* traffic while
//! every other model keeps answering at full speed — the serve-side
//! mirror of the cross-application interference the paper models on the
//! GPU. Non-predict commands (and predicts whose model cannot be
//! resolved) ride a control shard. The shard map is immutable and
//! swapped atomically when an admin `load` registers a new model;
//! [`ServiceConfig::sharded`]` = false` collapses everything onto the
//! control shard — the legacy single-queue engine, kept for A/B
//! benchmarks. When any queue is full the service **sheds load** —
//! [`ServeError::Overloaded`] immediately, never unbounded buffering —
//! so a burst degrades into fast rejections instead of collapsing
//! latency for everyone. Workers drain requests in small batches per
//! lock acquisition to cut contention under load.
//!
//! Every job carries a [`Trace`] recording how long each pipeline stage
//! took (parse, queue wait, admission, cache lookup, batch assembly,
//! predict); completed traces feed per-stage histograms, queue-wait vs.
//! service-time splits (global and per model), and — when the end-to-end
//! latency exceeds [`ServiceConfig::slow_request_threshold`] — a bounded
//! ring of slow-request captures dumpable via the `trace` command.
//!
//! # Fault tolerance
//!
//! Workers are *supervised*: each semantic predict batch runs under
//! `catch_unwind`, so a panicking model answers every request in its
//! batch with [`ServeError::Internal`] instead of dropping them, and a
//! panic that escapes the batch machinery respawns the worker loop
//! without losing queued jobs. A model that panics
//! [`ServiceConfig::quarantine_threshold`] times in a row is
//! quarantined — it answers [`ServeError::Unavailable`] while every
//! other model keeps serving — until an admin `load`/`reload` installs
//! a fresh copy. Requests may carry a relative deadline; ones that
//! expire before a worker picks them up are shed at dequeue with
//! [`ServeError::DeadlineExceeded`]. All of it is exercised
//! deterministically through the [`FaultPlan`] in
//! [`ServiceConfig::faults`].

use crate::admission::{self, Placement};
use crate::cache::{CacheMapStats, FeatureCache};
use crate::error::ServeError;
use crate::fault::{panic_message, FaultPlan, FaultSite, HealthReport, ModelHealth};
use crate::metrics::{
    BrownoutPressure, Metrics, MetricsSnapshot, ModelMetrics, OutcomeCounters, OutcomeTrackers,
    Priority, RobustnessCounters, ShardSnapshot,
};
use crate::observe;
use crate::shard::{Shard, CONTROL_SHARD};
use crate::snapshot::{self, ModelRegistry, ServableModel};
use bagpred_core::nbag::{NBag, NBagMeasurement, MAX_BAG};
use bagpred_core::{Bag, Measurement, Platforms};
use bagpred_obs::{EventLog, SlowEvent, Stage, StageSet, Trace};
use bagpred_workloads::Workload;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError, RwLock, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for the engine.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining each shard's queue (the control shard
    /// and every per-model shard get this many workers of their own).
    pub workers: usize,
    /// Maximum queued (not yet picked up) requests per shard before
    /// shedding.
    pub queue_capacity: usize,
    /// Maximum requests one worker takes per lock acquisition — also the
    /// upper bound on one semantic `predict_batch` call.
    pub batch_size: usize,
    /// Per-map entry bound of the feature cache (LRU eviction on
    /// overflow); `0` disables the bound.
    pub cache_capacity: usize,
    /// The one directory the `load`/`save`/`reload` commands may touch:
    /// default location when `path=` is omitted *and* the confinement
    /// root for explicit paths (no `..`, no absolute path outside it).
    /// `None` rejects every admin file operation.
    pub snapshot_dir: Option<PathBuf>,
    /// Requests whose end-to-end latency meets or exceeds this keep
    /// their full span breakdown in the slow-request ring (`trace`
    /// command). `Duration::MAX` disables capture by threshold.
    pub slow_request_threshold: Duration,
    /// Bound of the slow-request ring (oldest evicted first); `0`
    /// disables capture entirely.
    pub event_log_capacity: usize,
    /// Consecutive predict panics before a model is quarantined
    /// (answers [`ServeError::Unavailable`] until an admin
    /// `load`/`reload` clears it). `0` disables quarantine.
    pub quarantine_threshold: u32,
    /// The armed fault-injection plan. Defaults to the empty plan,
    /// which injects nothing and costs one `Vec::is_empty` per site
    /// check; the `serve` binary arms it from `BAGPRED_FAULTS`.
    pub faults: Arc<FaultPlan>,
    /// Per-model shard isolation (the default). `false` routes every
    /// request to the single control shard — the legacy shared-queue
    /// engine where a slow model head-of-line-blocks all others; kept
    /// so benchmarks can measure exactly what sharding buys.
    pub sharded: bool,
    /// Bound of the pending-prediction ring that outcome reports join
    /// against (oldest evicted first, counted as expired); `0` disables
    /// outcome tracking entirely.
    pub outcome_capacity: usize,
    /// How long a recorded prediction waits for its outcome before it
    /// is evicted (and counted as expired).
    pub outcome_ttl: Duration,
    /// Page-Hinkley per-sample slack, in percent error: mean shifts
    /// smaller than this never accumulate toward a drift alarm.
    pub drift_delta: f64,
    /// Page-Hinkley detection threshold, in accumulated percent error:
    /// the drift alarm latches when the test statistic exceeds it.
    pub drift_lambda: f64,
    /// Brownout watermark for `prio=low` predicts, as a fraction of
    /// [`ServiceConfig::queue_capacity`]: a shard whose queue depth is
    /// at or above it sheds low-priority work before touching normal
    /// or high traffic.
    pub brownout_low: f64,
    /// Brownout watermark for `prio=normal` predicts (fraction of
    /// [`ServiceConfig::queue_capacity`]). High-priority work is never
    /// browned out — it sheds only when the queue is hard-full.
    pub brownout_normal: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            batch_size: 8,
            // Generous next to the pair key space (9 benchmarks × a few
            // batch sizes) but finite, so adversarial n-bag traffic with
            // fresh batch sizes cannot grow the maps without bound.
            cache_capacity: 4096,
            snapshot_dir: None,
            // A warm pair predict is tens of microseconds; cold feature
            // collection is milliseconds. 25ms only fires on genuinely
            // pathological requests.
            slow_request_threshold: Duration::from_millis(25),
            event_log_capacity: 128,
            // Three consecutive panics is deliberate, not one: a single
            // panic may be a poison request; three in a row with no
            // success in between means the model itself is broken.
            quarantine_threshold: 3,
            faults: Arc::new(FaultPlan::none()),
            sharded: true,
            // Room for one queue's worth of in-flight predictions per
            // model times a healthy margin; a minute covers any client
            // that acts on the prediction before reporting back.
            outcome_capacity: 1024,
            outcome_ttl: Duration::from_secs(60),
            // Percent-error stream: ignore mean shifts under 1 point;
            // alarm once the accumulated excess tops 500 points (e.g.
            // a sustained +25-point error shift for ~20 outcomes).
            // Calibrated against the paper corpus's own LOOCV residual
            // stream, whose natural excursions reach ~340 points
            // (repro ext9): the detector stays calm on in-regime
            // accuracy but fires within ~20 outcomes of a 2x
            // ground-truth shift.
            drift_delta: 1.0,
            drift_lambda: 500.0,
            // Watermarks leave headroom between the classes: with the
            // default 64-slot queue, low sheds from depth 32, normal
            // from 48, and high rides until the hard bound at 64.
            brownout_low: 0.5,
            brownout_normal: 0.75,
        }
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict the multi-application GPU time of one bag of apps.
    Predict {
        /// Explicit model name; `None` picks a registered default by arity.
        model: Option<String>,
        /// The co-running applications (2..=[`MAX_BAG`]).
        apps: Vec<Workload>,
    },
    /// Pack apps onto `gpus` GPUs under a predicted-latency budget.
    Schedule {
        /// Explicit model name; `None` picks a registered default.
        model: Option<String>,
        /// Number of simulated GPUs to pack onto.
        gpus: usize,
        /// Per-GPU predicted-time budget, seconds.
        budget_s: f64,
        /// Applications asking for admission.
        apps: Vec<Workload>,
    },
    /// Report service counters, cache stats, and latency percentiles —
    /// service-wide, or for one model when `model` is set.
    Stats {
        /// `Some(name)` reports that model's counters; `None` the whole
        /// service.
        model: Option<String>,
    },
    /// List registered models.
    Models,
    /// Render every counter and histogram as Prometheus text.
    Metrics,
    /// Report per-model panic/quarantine state (not admin: health is
    /// what a load balancer polls to route around a sick model).
    Health,
    /// Dump the slow-request ring (admin-gated like `load`/`save`:
    /// span breakdowns leak request contents and timing).
    Trace,
    /// Cancel an earlier tagged request by its client-assigned id (not
    /// admin: hedging clients cancel their own losers constantly). A
    /// still-queued target is dropped at dequeue with
    /// [`ServeError::Cancelled`]; one that already completed — or was
    /// never seen — answers `late`, never an error.
    Cancel {
        /// The client-assigned request id to cancel.
        id: u64,
    },
    /// Report the actual runtime observed after acting on an earlier
    /// prediction, joining it back to the recorded prediction by
    /// request id (not admin: closing the loop is for every client).
    Observe {
        /// The request id of the prediction being reported on.
        id: u64,
        /// Observed actual runtime, whole microseconds.
        actual_us: u64,
    },
    /// Register (or replace) a model from a snapshot file.
    Load {
        /// Name to register the model under.
        model: String,
        /// Snapshot file to decode (checksum-verified).
        path: String,
    },
    /// Write snapshots to disk: one model to a file, or every model to a
    /// directory.
    Save {
        /// `Some(name)` saves that model; `None` saves all of them.
        model: Option<String>,
        /// Destination — a file for one model, a directory for all;
        /// `None` falls back to [`ServiceConfig::snapshot_dir`].
        dest: Option<String>,
    },
    /// Atomically swap an already-registered model with a fresh decode of
    /// its snapshot. Queued requests are never dropped: each one predicts
    /// with whichever version it resolves, old or new.
    Reload {
        /// Name of the registered model to swap.
        model: String,
        /// Snapshot file; `None` reads `<snapshot_dir>/<model>.bagsnap`.
        path: Option<String>,
    },
}

impl Request {
    /// True for the admin commands (`load`/`save`/`reload`) — the ones
    /// that read or write the server's filesystem. The TCP front-end
    /// refuses them unless the listener opted in
    /// ([`crate::ServerConfig::admin`]); even then, the engine confines
    /// their paths to [`ServiceConfig::snapshot_dir`]. `trace` is admin
    /// too: slow-request captures reveal other clients' request
    /// contents and timing.
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Request::Load { .. } | Request::Save { .. } | Request::Reload { .. } | Request::Trace
        )
    }
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Predicted multi-application GPU time.
    Prediction {
        /// Name of the model that produced the prediction.
        model: String,
        /// Predicted bag GPU time, seconds.
        predicted_s: f64,
    },
    /// Admission decision.
    Schedule(Placement),
    /// Service statistics (boxed: the report is by far the largest
    /// reply payload, and every prediction would pay its size inline).
    Stats(Box<StatsReport>),
    /// One model's request counters and latency window.
    ModelStats {
        /// The model the counters belong to.
        model: String,
        /// Its counters; all-zero when the model has seen no traffic.
        /// Boxed for the same reason as [`Reply::Stats`]: snapshots are
        /// the largest reply payloads, and predictions should not pay
        /// their size inline.
        metrics: Box<MetricsSnapshot>,
        /// The shard this model's jobs wait in: its own shard when the
        /// engine is sharded, the control shard in legacy single-queue
        /// mode — so queue-wait attribution names the queue the job
        /// actually sat in, never a queue it shared only notionally.
        shard: Option<Box<ShardSnapshot>>,
    },
    /// Registered models as `(name, description)` pairs, sorted.
    Models(Vec<(String, String)>),
    /// The Prometheus-text exposition document.
    Metrics(String),
    /// Per-model health plus a queue-pressure snapshot, so a load
    /// balancer polling `health` sees brownout shedding without
    /// scraping full stats.
    Health {
        /// Per-model health, sorted by model name.
        reports: Vec<HealthReport>,
        /// Per-priority brownout shed totals and the deepest queue.
        pressure: BrownoutPressure,
    },
    /// Slow-request captures, oldest first.
    Traces(Vec<SlowEvent>),
    /// A `load` command registered a model.
    Loaded {
        /// Name the model was registered under.
        model: String,
        /// Short kind description (`pair/tree`, ...).
        desc: String,
        /// True when an existing model of the same name was replaced.
        replaced: bool,
    },
    /// A `save` command wrote snapshots.
    Saved {
        /// The single model saved, or `None` for a save-all.
        model: Option<String>,
        /// Snapshots written.
        count: usize,
        /// File (single model) or directory (save-all) written to.
        dest: String,
    },
    /// A `reload` command swapped a model in place.
    Reloaded {
        /// Name of the swapped model.
        model: String,
        /// Short kind description of the freshly decoded model.
        desc: String,
    },
    /// An `observe` report was accepted. Never an error: an outcome
    /// that arrives too late (or twice) is counted, not punished.
    Observed {
        /// True when the outcome joined a recorded prediction; false
        /// when the id was unknown, already consumed, or evicted.
        matched: bool,
    },
    /// A `cancel` command was processed. Never an error: cancelling an
    /// id the server no longer (or never) tracked answers `late`.
    Cancelled {
        /// True when the target was still in flight and will be dropped
        /// at dequeue; false when it had already completed (late).
        pending: bool,
    },
}

/// Everything the `stats` command reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Request counters and latency window.
    pub metrics: MetricsSnapshot,
    /// Feature-cache lookups answered without computing.
    pub cache_hits: u64,
    /// Feature-cache lookups that computed.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when idle.
    pub cache_hit_rate: f64,
    /// Entries across all cache maps.
    pub cache_entries: usize,
    /// Entries evicted to respect the cache capacity bound.
    pub cache_evictions: u64,
    /// Per-map cache counters, in stable order: apps, fairness, nbags, profiles.
    pub cache_maps: [CacheMapStats; 4],
    /// Registered models.
    pub models: usize,
    /// Requests queued but not yet picked up at snapshot time.
    pub queue_depth: usize,
    /// Worker threads.
    pub workers: usize,
    /// Slow requests ever captured (including ones since evicted from
    /// the ring).
    pub slow_captured: u64,
    /// Predict panics caught and answered with `err internal`.
    pub worker_panics: u64,
    /// Worker loops respawned after a panic escaped batch isolation.
    pub worker_respawns: u64,
    /// Requests shed at dequeue because their deadline had expired.
    pub deadline_expired: u64,
    /// Times any model entered quarantine.
    pub quarantines: u64,
    /// Models currently quarantined.
    pub quarantined_models: usize,
    /// Faults injected by the armed [`FaultPlan`] (0 in production).
    pub faults_injected: u64,
    /// Per-shard queue accounting: the control shard first, then every
    /// model shard sorted by name. One entry (the control shard) when
    /// the engine runs unsharded.
    pub shards: Vec<ShardSnapshot>,
    /// Outcome reports joined to their recorded prediction.
    pub outcomes_matched: u64,
    /// Outcome reports whose id had no pending prediction.
    pub outcomes_orphaned: u64,
    /// Recorded predictions evicted unmatched (TTL or ring capacity).
    pub outcomes_expired: u64,
    /// Predictions currently awaiting their outcome.
    pub outcomes_pending: usize,
    /// Drift alarm edges (models newly flagged as drifting).
    pub drift_alarms: u64,
    /// Models whose drift alarm is currently latched.
    pub drifting_models: usize,
    /// Requests cancelled by id and dropped at dequeue before predict.
    pub cancelled: u64,
    /// Cancel commands that arrived after their target completed.
    pub cancel_late: u64,
    /// Hedge-pair duplicates whose successful reply was served but
    /// deduplicated out of per-model stats and the outcome ring.
    pub hedge_deduped: u64,
    /// Predicts shed by brownout watermarks, per priority class in
    /// [`Priority::ALL`] order (high, normal, low).
    pub brownout_shed: [u64; 3],
}

/// The outcome a submitter receives on its channel.
pub type Outcome = Result<Reply, ServeError>;

/// Where a job's outcome goes. `Direct` is the classic one-channel-per-
/// request path; `Tagged` carries the binary protocol's client-assigned
/// request id, so one connection's writer can multiplex many in-flight
/// requests and forward replies in completion order.
pub(crate) enum ReplySink {
    Direct(mpsc::Sender<Outcome>),
    Tagged(u64, mpsc::Sender<(u64, Outcome)>),
}

impl ReplySink {
    fn send(&self, outcome: Outcome) {
        // A submitter that dropped its receiver no longer cares.
        match self {
            ReplySink::Direct(tx) => drop(tx.send(outcome)),
            ReplySink::Tagged(id, tx) => drop(tx.send((*id, outcome))),
        }
    }

    /// The client-assigned request id, when this sink has one. Only
    /// tagged (multiplexed) requests can be joined by a later `observe`.
    fn tag(&self) -> Option<u64> {
        match self {
            ReplySink::Direct(_) => None,
            ReplySink::Tagged(id, _) => Some(*id),
        }
    }
}

/// One served prediction awaiting the client's outcome report.
struct PendingPrediction {
    id: u64,
    model: String,
    predicted_us: u64,
    at: Instant,
}

/// Bounded, TTL-evicted ring of served predictions keyed by the binary
/// protocol's client-assigned request id. `observe` reports join here.
/// Insertion order is arrival order, so both eviction policies pop from
/// the front: expired entries first, then the oldest entry when the
/// ring is full. Every unmatched eviction is counted by the caller —
/// the ring never errors and never blocks the serving path beyond one
/// short mutex hold.
struct PendingOutcomes {
    capacity: usize,
    ttl: Duration,
    entries: Mutex<VecDeque<PendingPrediction>>,
}

impl PendingOutcomes {
    fn new(capacity: usize, ttl: Duration) -> Self {
        Self {
            capacity,
            ttl,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Drops entries older than the TTL off the front; returns how many.
    fn sweep(&self, entries: &mut VecDeque<PendingPrediction>, now: Instant) -> u64 {
        let mut evicted = 0;
        while let Some(front) = entries.front() {
            if now.duration_since(front.at) <= self.ttl {
                break;
            }
            entries.pop_front();
            evicted += 1;
        }
        evicted
    }

    /// Records a served prediction. Returns the number of entries
    /// evicted unmatched (TTL expiry plus capacity overflow) so the
    /// caller can count them. With capacity 0 tracking is disabled and
    /// the prediction itself counts as immediately expired.
    fn record(&self, id: u64, model: &str, predicted_us: u64) -> u64 {
        if self.capacity == 0 {
            return 1;
        }
        let now = Instant::now();
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut evicted = self.sweep(&mut entries, now);
        if entries.len() >= self.capacity {
            entries.pop_front();
            evicted += 1;
        }
        entries.push_back(PendingPrediction {
            id,
            model: model.to_string(),
            predicted_us,
            at: now,
        });
        evicted
    }

    /// Consumes the oldest pending prediction with this id. Returns the
    /// entry (if any) and the number of entries TTL-evicted during the
    /// lookup. A second `observe` for the same id finds nothing and is
    /// counted as orphaned by the caller.
    fn take(&self, id: u64) -> (Option<PendingPrediction>, u64) {
        let now = Instant::now();
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let evicted = self.sweep(&mut entries, now);
        let entry = entries
            .iter()
            .position(|p| p.id == id)
            .and_then(|at| entries.remove(at));
        (entry, evicted)
    }

    /// Predictions currently awaiting an outcome (expired ones still in
    /// the ring are swept lazily, so this is an upper bound).
    fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// In-flight and cancel-requested request ids. Every tagged job
/// registers at enqueue and completes at finish, so both sets are
/// self-cleaning: an id lives here exactly as long as its job does.
#[derive(Default)]
struct CancelState {
    inflight: HashSet<u64>,
    cancelled: HashSet<u64>,
}

/// The server side of `cancel id=<req>`: a cancel for a registered
/// (still in-flight) id moves it to the cancelled set and workers drop
/// it at dequeue; a cancel for anything else is `late`. One short mutex
/// hold per operation, never on the predict path itself.
struct CancelRegistry {
    state: Mutex<CancelState>,
}

impl CancelRegistry {
    fn new() -> Self {
        Self {
            state: Mutex::new(CancelState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CancelState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a tagged job at enqueue time.
    fn register(&self, id: u64) {
        self.lock().inflight.insert(id);
    }

    /// Rolls back a registration whose push was shed.
    fn unregister(&self, id: u64) {
        let mut state = self.lock();
        state.inflight.remove(&id);
        state.cancelled.remove(&id);
    }

    /// Requests cancellation. Returns true (`pending`) when the target
    /// was still in flight — it will be dropped at dequeue, or, if a
    /// worker already picked it up, complete normally (the cancel
    /// raced the pickup; the client discards the reply either way).
    fn request_cancel(&self, id: u64) -> bool {
        let mut state = self.lock();
        if state.inflight.remove(&id) {
            state.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Worker-side check at dequeue: consumes a pending cancellation.
    fn take_cancelled(&self, id: u64) -> bool {
        self.lock().cancelled.remove(&id)
    }

    /// True while the id's job has not finished (queued or running,
    /// cancel-requested or not).
    fn is_inflight(&self, id: u64) -> bool {
        let state = self.lock();
        state.inflight.contains(&id) || state.cancelled.contains(&id)
    }

    /// Drops all trace of a finished job's id.
    fn complete(&self, id: u64) {
        let mut state = self.lock();
        state.inflight.remove(&id);
        state.cancelled.remove(&id);
    }
}

/// How a finishing served prediction relates to a hedge pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HedgeRole {
    /// Not part of any linked pair: full accounting.
    Unpaired,
    /// The pair's first successful serve: full accounting.
    First,
    /// The pair's second successful serve: the client already took the
    /// winner, so per-model stats and the outcome ring skip this one.
    Deduped,
}

/// One linked hedge pair, keyed by either attempt id.
struct HedgePair {
    primary: u64,
    hedge: u64,
    /// Id of the first attempt to serve successfully, once one has.
    served: Option<u64>,
}

/// Links hedge attempts to their primaries so the engine counts each
/// logical request's successful serve exactly once. FIFO-bounded:
/// pairs whose loser never finishes (shed hedges, torn connections)
/// age out instead of leaking.
struct HedgeLedger {
    capacity: usize,
    pairs: Mutex<VecDeque<HedgePair>>,
}

impl HedgeLedger {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pairs: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<HedgePair>> {
        self.pairs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Links a hedge to its primary at hedge enqueue. `primary_done`
    /// covers the race where the primary's reply was already in flight
    /// when the client fired the hedge: the pair starts pre-served so
    /// the hedge's own serve is deduplicated.
    fn link(&self, primary: u64, hedge: u64, primary_done: bool) {
        if self.capacity == 0 {
            return;
        }
        let mut pairs = self.lock();
        if pairs.len() >= self.capacity {
            pairs.pop_front();
        }
        pairs.push_back(HedgePair {
            primary,
            hedge,
            served: primary_done.then_some(primary),
        });
    }

    /// Rolls back a link whose hedge push was shed.
    fn unlink(&self, hedge: u64) {
        self.lock().retain(|p| p.hedge != hedge);
    }

    /// Classifies a successful serve. The second serve of a pair
    /// removes it — both sides are done.
    fn on_served(&self, id: u64) -> HedgeRole {
        let mut pairs = self.lock();
        let Some(at) = pairs.iter().position(|p| p.primary == id || p.hedge == id) else {
            return HedgeRole::Unpaired;
        };
        match pairs[at].served {
            None => {
                pairs[at].served = Some(id);
                HedgeRole::First
            }
            Some(winner) if winner == id => HedgeRole::First,
            Some(_) => {
                pairs.remove(at);
                HedgeRole::Deduped
            }
        }
    }

    /// A failed (or cancelled) attempt dissolves its pair: the
    /// surviving side — if it serves at all — is a genuine serve and
    /// gets full accounting.
    fn on_failed(&self, id: u64) {
        self.lock().retain(|p| p.primary != id && p.hedge != id);
    }
}

struct Job {
    request: Request,
    trace: Trace,
    tx: ReplySink,
    /// Absolute expiry; a worker sheds the job at dequeue when the
    /// deadline has already passed.
    deadline: Option<Instant>,
}

pub(crate) struct Inner {
    pub(crate) registry: Arc<ModelRegistry>,
    platforms: Platforms,
    pub(crate) cache: FeatureCache,
    pub(crate) metrics: Metrics,
    pub(crate) model_metrics: ModelMetrics,
    pub(crate) config: ServiceConfig,
    /// The shard serving non-predict commands and predicts whose model
    /// cannot be resolved at submit time; in unsharded mode, every job.
    control: Arc<Shard<Job>>,
    /// The per-model shard map. The inner `Arc<HashMap>` is immutable:
    /// routing clones it under a brief read lock and looks up lock-free;
    /// an admin `load` builds a new map and swaps the `Arc` in one
    /// store, so readers always see a complete, consistent map.
    shards: RwLock<Arc<HashMap<String, Arc<Shard<Job>>>>>,
    /// Worker join handles, control and model shards alike. On `Inner`
    /// (not the service) because `do_load` — which runs on a worker
    /// thread holding only `&Inner` — spawns workers for new shards.
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Weak self-reference so `do_load` can hand new worker threads the
    /// `Arc<Inner>` they run under. Weak, or the engine would own
    /// itself and never drop.
    self_ref: OnceLock<Weak<Inner>>,
    shutdown: AtomicBool,
    pub(crate) stages: StageSet,
    pub(crate) events: EventLog,
    pub(crate) robust: RobustnessCounters,
    pub(crate) health: ModelHealth,
    /// Served predictions awaiting the client's `observe` report.
    pending: PendingOutcomes,
    /// In-flight ids and pending cancellations (`cancel id=<req>`).
    cancels: CancelRegistry,
    /// Hedge pairs awaiting their first successful serve.
    hedges: HedgeLedger,
    /// Outcome-join accounting (matched / orphaned / expired / alarms).
    pub(crate) outcomes: OutcomeCounters,
    /// Per-model online residual windows and drift detectors.
    pub(crate) trackers: OutcomeTrackers,
}

impl Inner {
    /// The current shard map (lock held only for the `Arc` clone).
    fn shard_map(&self) -> Arc<HashMap<String, Arc<Shard<Job>>>> {
        Arc::clone(&self.shards.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The shard `request` waits in: the resolved model's shard for
    /// predicts (sharded mode), the control shard for everything else —
    /// commands, unsharded mode, and predicts that will fail model
    /// resolution (the worker produces their error reply).
    fn route(&self, request: &Request) -> Arc<Shard<Job>> {
        if self.config.sharded {
            if let Request::Predict { model, apps } = request {
                if let Ok((name, _)) = resolve_model(&self.registry, model, apps.len()) {
                    if let Some(shard) = self.shard_map().get(&name) {
                        return Arc::clone(shard);
                    }
                }
            }
        }
        Arc::clone(&self.control)
    }

    /// Predictions currently awaiting their outcome report.
    pub(crate) fn pending_outcomes(&self) -> usize {
        self.pending.len()
    }

    /// Jobs queued across the control shard and every model shard.
    pub(crate) fn queue_depth(&self) -> usize {
        let shards = self.shard_map();
        self.control.depth() + shards.values().map(|s| s.depth()).sum::<usize>()
    }

    /// Per-shard snapshots: control first, then model shards by name.
    pub(crate) fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        let map = self.shard_map();
        let mut snapshots = vec![self.control.snapshot()];
        let mut models: Vec<_> = map.values().collect();
        models.sort_by(|a, b| a.name().cmp(b.name()));
        snapshots.extend(models.into_iter().map(|s| s.snapshot()));
        snapshots
    }

    /// The shard reported by `stats model=<name>`: the model's own in
    /// sharded mode, the control shard (where its jobs actually wait)
    /// otherwise.
    fn shard_snapshot_for(&self, name: &str) -> Option<ShardSnapshot> {
        if self.config.sharded {
            self.shard_map().get(name).map(|s| s.snapshot())
        } else {
            Some(self.control.snapshot())
        }
    }

    /// Guarantees a shard (with running workers) for `name`, swapping in
    /// an extended map. Called at `load` time for newly registered
    /// models; a no-op when the shard exists or the engine is unsharded.
    /// Shards are never removed — a model name, once served, keeps its
    /// queue accounting for the life of the engine.
    fn ensure_shard(&self, name: &str) {
        if !self.config.sharded {
            return;
        }
        let mut shards = self.shards.write().unwrap_or_else(PoisonError::into_inner);
        if shards.contains_key(name) || self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(inner) = self.self_ref.get().and_then(Weak::upgrade) else {
            return; // tearing down: no new workers
        };
        let shard = Arc::new(Shard::new(name, self.config.queue_capacity));
        spawn_shard_workers(&inner, &shard);
        let mut next = HashMap::clone(&shards);
        next.insert(name.to_string(), shard);
        *shards = Arc::new(next);
    }
}

/// The in-process prediction service. The TCP front-end in
/// [`crate::server`] is a thin line-protocol adapter over this type.
pub struct PredictionService {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for PredictionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionService")
            .field("config", &self.inner.config)
            .field("models", &self.inner.registry.len())
            .finish()
    }
}

impl PredictionService {
    /// Starts the worker pool and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics on a zero worker count, queue capacity, or batch size.
    pub fn start(
        registry: Arc<ModelRegistry>,
        platforms: Platforms,
        config: ServiceConfig,
    ) -> Arc<Self> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        let shards: HashMap<String, Arc<Shard<Job>>> = if config.sharded {
            registry
                .list()
                .into_iter()
                .map(|(name, _)| {
                    let shard = Arc::new(Shard::new(&name, config.queue_capacity));
                    (name, shard)
                })
                .collect()
        } else {
            HashMap::new()
        };
        let inner = Arc::new(Inner {
            registry,
            platforms,
            cache: FeatureCache::with_capacity(config.cache_capacity),
            metrics: Metrics::new(),
            model_metrics: ModelMetrics::new(),
            control: Arc::new(Shard::new(CONTROL_SHARD, config.queue_capacity)),
            shards: RwLock::new(Arc::new(shards)),
            handles: Mutex::new(Vec::new()),
            self_ref: OnceLock::new(),
            shutdown: AtomicBool::new(false),
            stages: StageSet::new(),
            events: EventLog::new(config.event_log_capacity),
            robust: RobustnessCounters::new(),
            health: ModelHealth::new(),
            pending: PendingOutcomes::new(config.outcome_capacity, config.outcome_ttl),
            cancels: CancelRegistry::new(),
            // Sized like the outcome ring: one queue's worth of hedge
            // pairs per model with margin; stale pairs age out FIFO.
            hedges: HedgeLedger::new(1024),
            outcomes: OutcomeCounters::new(),
            trackers: OutcomeTrackers::new(config.drift_delta, config.drift_lambda),
            config,
        });
        inner
            .self_ref
            .set(Arc::downgrade(&inner))
            .expect("self_ref set once");
        spawn_shard_workers(&inner, &inner.control.clone());
        for shard in inner.shard_map().values() {
            spawn_shard_workers(&inner, shard);
        }
        Arc::new(Self { inner })
    }

    /// Enqueues a request; the reply arrives on the returned channel.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full (load shedding)
    /// and [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, request: Request) -> Result<mpsc::Receiver<Outcome>, ServeError> {
        self.submit_traced(request, Trace::new())
    }

    /// Enqueues a request carrying an already-started [`Trace`] (the TCP
    /// front-end starts one per wire line and marks its parse stage
    /// before submitting). Same contract as [`submit`](Self::submit).
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full (load shedding)
    /// and [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit_traced(
        &self,
        request: Request,
        trace: Trace,
    ) -> Result<mpsc::Receiver<Outcome>, ServeError> {
        self.submit_traced_deadline(request, trace, None)
    }

    /// [`submit_traced`](Self::submit_traced) with an optional relative
    /// deadline: if no worker picks the job up within the budget it is
    /// shed at dequeue with [`ServeError::DeadlineExceeded`] instead of
    /// serving a reply nobody is waiting for.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full (load shedding)
    /// and [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit_traced_deadline(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<Outcome>, ServeError> {
        self.submit_traced_options(request, trace, deadline, Priority::Normal)
    }

    /// [`submit_traced_deadline`](Self::submit_traced_deadline) with an
    /// explicit brownout [`Priority`] (the text protocol's `prio=`
    /// option rides in through here).
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full or a brownout
    /// watermark shed the priority class, and
    /// [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit_traced_options(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
        priority: Priority,
    ) -> Result<mpsc::Receiver<Outcome>, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            request,
            trace,
            deadline,
            priority,
            None,
            ReplySink::Direct(tx),
        )?;
        Ok(rx)
    }

    /// Enqueues a request whose outcome is delivered tagged with a
    /// client-assigned request id on a shared reply channel — the
    /// binary protocol's multiplexed path: one connection, many
    /// in-flight requests, replies forwarded in completion order.
    /// `priority` picks the brownout class; `hedge_of` links the
    /// request to an earlier attempt so hedge pairs count once.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the target shard's queue is full
    /// (or brownout shed the priority class)
    /// and [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    #[allow(clippy::too_many_arguments)] // crate-internal; mirrors `enqueue`
    pub(crate) fn submit_tagged(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
        priority: Priority,
        hedge_of: Option<u64>,
        request_id: u64,
        tx: mpsc::Sender<(u64, Outcome)>,
    ) -> Result<(), ServeError> {
        self.enqueue(
            request,
            trace,
            deadline,
            priority,
            hedge_of,
            ReplySink::Tagged(request_id, tx),
        )
    }

    fn enqueue(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
        priority: Priority,
        hedge_of: Option<u64>,
        tx: ReplySink,
    ) -> Result<(), ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let deadline = deadline.map(|budget| Instant::now() + budget);
        let shard = self.inner.route(&request);
        // Brownout: under queue pressure, shed the lower classes before
        // the hard capacity bound sheds everyone. Commands (stats,
        // health, cancel, ...) are exempt — pressure is exactly when an
        // operator needs them to answer.
        if matches!(request, Request::Predict { .. }) {
            if let Some(threshold) = brownout_threshold(&self.inner.config, priority) {
                if shard.depth() >= threshold {
                    self.inner.metrics.on_shed();
                    shard.counters().on_shed();
                    self.inner.robust.on_brownout_shed(priority);
                    return Err(ServeError::Overloaded);
                }
            }
        }
        // Register before the push so a cancel can never slip between a
        // queued job and its registration; shed pushes roll back.
        if let Some(id) = tx.tag() {
            self.inner.cancels.register(id);
            if let Some(primary) = hedge_of {
                self.inner
                    .hedges
                    .link(primary, id, !self.inner.cancels.is_inflight(primary));
            }
        }
        let job = Job {
            request,
            trace,
            tx,
            deadline,
        };
        // Count inside the shard's queue lock: a worker can pick the
        // job up the moment the lock drops, and `stats` must already
        // see it.
        match shard.try_push(job, || self.inner.metrics.on_received()) {
            Ok(()) => Ok(()),
            Err(job) => {
                if let Some(id) = job.tx.tag() {
                    self.inner.cancels.unregister(id);
                    if hedge_of.is_some() {
                        self.inner.hedges.unlink(id);
                    }
                }
                self.inner.metrics.on_shed();
                Err(ServeError::Overloaded)
            }
        }
    }

    /// Server-side cancellation fast path (`cancel id=<req>` and the
    /// binary `Cancel` opcode): flags a still-in-flight request so the
    /// worker drops it at dequeue with [`ServeError::Cancelled`].
    /// Returns true when the target was pending; false (`late`) when it
    /// had already completed or was never seen. Runs inline — never
    /// queued behind the very backlog it is trying to trim.
    pub fn cancel(&self, id: u64) -> bool {
        do_cancel(&self.inner, id)
    }

    /// Blocking convenience: submit and wait for the reply.
    ///
    /// # Errors
    ///
    /// Submission errors plus every per-request [`ServeError`].
    pub fn call(&self, request: Request) -> Outcome {
        let rx = self.submit(request)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// [`call`](Self::call) with an already-started [`Trace`].
    ///
    /// # Errors
    ///
    /// Submission errors plus every per-request [`ServeError`].
    pub fn call_traced(&self, request: Request, trace: Trace) -> Outcome {
        let rx = self.submit_traced(request, trace)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// [`call_traced`](Self::call_traced) with an optional relative
    /// deadline (see [`submit_traced_deadline`](Self::submit_traced_deadline)).
    ///
    /// # Errors
    ///
    /// Submission errors plus every per-request [`ServeError`],
    /// including [`ServeError::DeadlineExceeded`].
    pub fn call_traced_deadline(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
    ) -> Outcome {
        let rx = self.submit_traced_deadline(request, trace, deadline)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// [`call_traced_deadline`](Self::call_traced_deadline) with an
    /// explicit brownout [`Priority`].
    ///
    /// # Errors
    ///
    /// Submission errors plus every per-request [`ServeError`],
    /// including brownout sheds as [`ServeError::Overloaded`].
    pub fn call_traced_options(
        &self,
        request: Request,
        trace: Trace,
        deadline: Option<Duration>,
        priority: Priority,
    ) -> Outcome {
        let rx = self.submit_traced_options(request, trace, deadline, priority)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// The model registry this service answers from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// The feature cache (exposed for tests and warm-up).
    pub fn cache(&self) -> &FeatureCache {
        &self.inner.cache
    }

    /// The service-wide request metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The per-model metrics map.
    pub fn model_metrics(&self) -> &ModelMetrics {
        &self.inner.model_metrics
    }

    /// The per-stage histograms.
    pub fn stages(&self) -> &StageSet {
        &self.inner.stages
    }

    /// The per-model panic/quarantine state behind the `health` command.
    pub fn health(&self) -> &ModelHealth {
        &self.inner.health
    }

    /// The armed fault plan (the empty plan unless a test or
    /// `BAGPRED_FAULTS` armed one).
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.config.faults
    }

    /// Records a duration against a stage histogram. The TCP front-end
    /// uses this for [`Stage::ReplyWrite`], which happens after the
    /// reply leaves the engine.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.inner.stages.record(stage, elapsed);
    }

    /// The slow-request ring, oldest first.
    pub fn slow_events(&self) -> Vec<SlowEvent> {
        self.inner.events.dump()
    }

    /// Outcome-join accounting: matched / orphaned / expired reports
    /// and drift alarm edges.
    pub fn outcomes(&self) -> &OutcomeCounters {
        &self.inner.outcomes
    }

    /// Per-model online residual windows and drift detectors, fed by
    /// `observe` reports joined to their recorded predictions.
    pub fn outcome_trackers(&self) -> &OutcomeTrackers {
        &self.inner.trackers
    }

    /// Renders every counter and histogram as Prometheus text (the
    /// `metrics` command).
    pub fn exposition(&self) -> String {
        observe::render(&self.inner)
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.control.notify_all();
        for shard in self.inner.shard_map().values() {
            shard.notify_all();
        }
        let mut handles = self
            .inner
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for handle in handles.drain(..) {
            // Workers run under `supervise_worker`, which catches every
            // panic and respawns the loop in place, so the join result
            // can only be `Ok`; swallowing it keeps a (theoretical)
            // failure in one worker from aborting the drain of the rest.
            let _ = handle.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns [`ServiceConfig::workers`] threads draining one shard,
/// registering their handles on `inner` for the shutdown join.
fn spawn_shard_workers(inner: &Arc<Inner>, shard: &Arc<Shard<Job>>) {
    let mut handles = inner.handles.lock().unwrap_or_else(PoisonError::into_inner);
    for index in 0..inner.config.workers {
        let inner = Arc::clone(inner);
        let shard = Arc::clone(shard);
        let handle = thread::Builder::new()
            .name(format!("bagpred-worker-{}-{index}", shard.name()))
            .spawn(move || supervise_worker(&inner, &shard))
            .expect("spawn worker thread");
        handles.push(handle);
    }
}

/// Runs the worker loop, respawning it in place after any panic that
/// escapes batch isolation. Restarting *inside* the thread (instead of
/// spawning a replacement) keeps the join handles on [`Inner`] valid
/// for the lifetime of the service.
fn supervise_worker(inner: &Inner, shard: &Shard<Job>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(inner, shard))) {
            // A clean return is the shutdown path.
            Ok(()) => return,
            Err(_) => {
                // Queued jobs are untouched (the panic site holds no
                // queue lock) and drained jobs were already answered by
                // batch isolation; the fresh loop picks up where the
                // dead one left off.
                inner.robust.on_worker_respawn();
            }
        }
    }
}

/// The queue depth at which `priority` predicts are browned out, or
/// `None` for classes that only shed at the hard capacity bound.
fn brownout_threshold(config: &ServiceConfig, priority: Priority) -> Option<usize> {
    let fraction = match priority {
        Priority::High => return None,
        Priority::Normal => config.brownout_normal,
        Priority::Low => config.brownout_low,
    };
    let capacity = config.queue_capacity as f64;
    Some(((capacity * fraction).ceil() as usize).max(1))
}

/// The cancel fast path shared by [`PredictionService::cancel`] and the
/// queued [`Request::Cancel`] command.
fn do_cancel(inner: &Inner, id: u64) -> bool {
    let started = Instant::now();
    // `cancel_race` widens the window between a cancel's arrival and
    // its effect, so the soak harness can chase the cancel-after-reply
    // race deterministically.
    if let Some(delay) = inner.config.faults.fire_delay(FaultSite::CancelRace, None) {
        thread::sleep(delay);
    }
    let pending = inner.cancels.request_cancel(id);
    if !pending {
        inner.robust.on_cancel_late();
    }
    inner.stages.record(Stage::Cancel, started.elapsed());
    pending
}

fn worker_loop(inner: &Inner, shard: &Shard<Job>) {
    loop {
        // Deterministic crash site for the respawn path. Firing before
        // the queue lock is taken means no job is ever lost to it.
        if inner.config.faults.fire(FaultSite::WorkerAbort, None) {
            panic!("injected fault: worker abort");
        }
        let Some(batch) = shard.pop_batch(inner.config.batch_size, &inner.shutdown) else {
            return;
        };
        process_batch(inner, shard, batch);
    }
}

/// Completes one job: records global (and, when the request resolved to
/// a model, per-model) metrics — end-to-end latency plus the queue-wait
/// vs. service-time split — folds the trace into the per-stage
/// histograms, captures a slow request when it crosses the threshold,
/// and sends the outcome.
fn finish(inner: &Inner, model: Option<&str>, job: Job, outcome: Outcome) {
    // The job is done: a cancel from here on is `late`.
    if let Some(id) = job.tx.tag() {
        inner.cancels.complete(id);
    }
    // Hedge dedup: the second successful serve of a linked pair is a
    // duplicate the client will discard — it stays out of per-model
    // stats and the outcome ring (global counters still see it, so
    // conservation holds). A failed attempt dissolves its pair so the
    // surviving side gets full accounting.
    let deduped = match (job.tx.tag(), &outcome) {
        (Some(id), Ok(Reply::Prediction { .. })) => {
            matches!(inner.hedges.on_served(id), HedgeRole::Deduped)
        }
        (Some(id), Err(_)) => {
            inner.hedges.on_failed(id);
            false
        }
        _ => false,
    };
    if deduped {
        inner.robust.on_hedge_deduped();
    }
    let total = job.trace.total();
    let queue_wait = job.trace.duration_of(Stage::QueueWait).unwrap_or_default();
    let parse = job.trace.duration_of(Stage::Parse).unwrap_or_default();
    let service = total.saturating_sub(queue_wait).saturating_sub(parse);
    inner.metrics.on_done(outcome.is_ok(), total);
    inner.metrics.on_phases(queue_wait, service);
    if let Some(name) = model {
        if !deduped {
            let metrics = inner.model_metrics.for_model(name);
            metrics.on_done(outcome.is_ok(), total);
            metrics.on_phases(queue_wait, service);
        }
    }
    inner.stages.observe(&job.trace);
    if total >= inner.config.slow_request_threshold {
        let mut summary = summarize(&job.request);
        // Surface the upstream trace context so a slow capture can be
        // stitched to the caller's own distributed trace.
        if let Some(context) = job.trace.context() {
            summary.push_str(&format!(" tc={context}"));
        }
        inner.events.record(summary, &job.trace, total);
    }
    // Register successful tagged predictions for outcome joining: the
    // client-assigned request id is the key a later `observe` uses.
    // Direct (in-process) submitters have no id the engine could join
    // on, so only the wire paths participate. Deduplicated hedge
    // losers stay out: their outcome report joins as orphaned instead
    // of double-feeding the residual window.
    if !deduped {
        if let (Some(id), Ok(Reply::Prediction { model, predicted_s })) = (job.tx.tag(), &outcome) {
            let expired = inner
                .pending
                .record(id, model, predicted_micros(*predicted_s));
            inner.outcomes.on_expired(expired);
        }
    }
    job.tx.send(outcome);
}

/// A prediction in seconds as whole microseconds, clamped to ≥ 1 so the
/// residual math never sees a zero from rounding.
fn predicted_micros(predicted_s: f64) -> u64 {
    let us = (predicted_s * 1e6).round();
    if us.is_finite() && us >= 1.0 {
        us.min(u64::MAX as f64) as u64
    } else {
        1
    }
}

/// One-line request description for slow-request captures.
fn summarize(request: &Request) -> String {
    fn bag(apps: &[Workload]) -> String {
        apps.iter()
            .map(|w| format!("{}@{}", w.benchmark().name(), w.batch_size()))
            .collect::<Vec<_>>()
            .join("+")
    }
    match request {
        Request::Predict { model: None, apps } => format!("predict {}", bag(apps)),
        Request::Predict {
            model: Some(m),
            apps,
        } => format!("predict model={m} {}", bag(apps)),
        Request::Schedule {
            gpus,
            budget_s,
            apps,
            ..
        } => format!("schedule k={gpus} budget={budget_s} {}", bag(apps)),
        Request::Stats { .. } => "stats".into(),
        Request::Models => "models".into(),
        Request::Metrics => "metrics".into(),
        Request::Health => "health".into(),
        Request::Trace => "trace".into(),
        Request::Load { model, .. } => format!("load model={model}"),
        Request::Save { .. } => "save".into(),
        Request::Reload { model, .. } => format!("reload model={model}"),
        Request::Observe { id, .. } => format!("observe id={id}"),
        Request::Cancel { id } => format!("cancel id={id}"),
    }
}

/// Processes one drained batch with **semantic** batching: every predict
/// job resolves its model and collects features up front, the jobs are
/// grouped by the model that will serve them, and each group is answered
/// by a single `predict_batch` call over the compiled flat model — the
/// chunked level-order walk with `bagpred_ml::LANES` records in flight
/// per loop iteration instead of one full dispatch per request.
/// Non-predict requests and failed preparations complete individually.
/// Predictions are bit-identical to the per-request path.
fn process_batch(inner: &Inner, shard: &Shard<Job>, jobs: Vec<Job>) {
    let mut pair_groups: Vec<ModelGroup<Measurement>> = Vec::new();
    let mut nbag_groups: Vec<ModelGroup<NBagMeasurement>> = Vec::new();

    for mut job in jobs {
        // Everything between the submitter's last mark and this point
        // was spent queued (including the drain lock).
        job.trace.mark(Stage::QueueWait);
        // Shed expired work before spending anything on it: the client
        // has given up (or will the instant it checks), so a late reply
        // only burns predict time other requests are queued behind.
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            inner.robust.on_deadline_expired();
            shard.counters().on_shed();
            finish(inner, None, job, Err(ServeError::DeadlineExceeded));
            continue;
        }
        // Same for cancelled work: the client (usually a hedging one
        // whose other attempt already won) is not waiting for this
        // reply, so drop it before predict spends anything on it.
        if job
            .tx
            .tag()
            .is_some_and(|id| inner.cancels.take_cancelled(id))
        {
            inner.robust.on_cancelled();
            shard.counters().on_shed();
            finish(inner, None, job, Err(ServeError::Cancelled));
            continue;
        }
        // Attribute the wait to the queue the job actually sat in —
        // this shard's — not to a notional shared queue.
        shard
            .counters()
            .on_served(job.trace.duration_of(Stage::QueueWait).unwrap_or_default());
        let Request::Predict { model, apps } = &job.request else {
            let result = catch_unwind(AssertUnwindSafe(|| {
                process(inner, &job.request, &mut job.trace)
            }));
            let (served_by, outcome) = result.unwrap_or_else(|payload| {
                inner.robust.on_worker_panic();
                (
                    None,
                    Err(ServeError::Internal(format!(
                        "request handler panicked: {}",
                        panic_message(payload.as_ref())
                    ))),
                )
            });
            finish(inner, served_by.as_deref(), job, outcome);
            continue;
        };
        let (model, apps) = (model.clone(), apps.clone());
        match prepare_predict(inner, &model, &apps, &mut job.trace) {
            Ok((name, model, PreparedRecord::Pair(record))) => {
                match pair_groups.iter_mut().find(|(n, _, _, _)| *n == name) {
                    Some((_, _, jobs, records)) => {
                        jobs.push(job);
                        records.push(*record);
                    }
                    None => pair_groups.push((name, model, vec![job], vec![*record])),
                }
            }
            Ok((name, model, PreparedRecord::NBag(record))) => {
                match nbag_groups.iter_mut().find(|(n, _, _, _)| *n == name) {
                    Some((_, _, jobs, records)) => {
                        jobs.push(job);
                        records.push((*record).clone());
                    }
                    None => nbag_groups.push((name, model, vec![job], vec![(*record).clone()])),
                }
            }
            Err((served_by, err)) => finish(inner, served_by.as_deref(), job, Err(err)),
        }
    }

    for (name, model, jobs, records) in pair_groups {
        let ServableModel::Pair(p) = &*model else {
            unreachable!("pair groups only hold pair models");
        };
        finish_group(inner, &name, jobs, || p.predict_batch(&records));
    }
    for (name, model, jobs, records) in nbag_groups {
        let ServableModel::NBag(p) = &*model else {
            unreachable!("n-bag groups only hold n-bag models");
        };
        finish_group(inner, &name, jobs, || p.predict_batch(&records));
    }
}

/// Answers one semantic batch group: runs the shared `predict_batch`
/// walk under `catch_unwind` so a panicking model fails *this group*
/// with [`ServeError::Internal`] — every member gets a reply, the
/// worker survives, and other models in the same drained batch are
/// untouched. Consecutive panics quarantine the model.
fn finish_group<F>(inner: &Inner, name: &str, mut jobs: Vec<Job>, predict: F)
where
    F: FnOnce() -> Vec<f64>,
{
    // Time since a job's cache lookup finished was spent assembling
    // the group; the `predict_batch` walk is shared, so every job in
    // the group is charged the same measured predict duration.
    for job in &mut jobs {
        job.trace.mark(Stage::BatchAssembly);
    }
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if inner.config.faults.fire(FaultSite::WorkerPanic, Some(name)) {
            panic!("injected fault: worker panic on model `{name}`");
        }
        if let Some(delay) = inner
            .config
            .faults
            .fire_delay(FaultSite::SlowPredict, Some(name))
        {
            thread::sleep(delay);
        }
        predict()
    }));
    let predict_elapsed = started.elapsed();
    match result {
        Ok(predictions) => {
            inner.health.on_success(name);
            for (mut job, predicted_s) in jobs.into_iter().zip(predictions) {
                job.trace.mark_for(Stage::Predict, predict_elapsed);
                finish(
                    inner,
                    Some(name),
                    job,
                    Ok(Reply::Prediction {
                        model: name.to_string(),
                        predicted_s,
                    }),
                );
            }
        }
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            inner.robust.on_worker_panic();
            let quarantined = inner
                .health
                .on_panic(name, inner.config.quarantine_threshold);
            if quarantined {
                inner.robust.on_quarantine();
            }
            // Panics are always event-worthy, not just when slow: the
            // ring is how `trace` explains a burst of `err internal`.
            if let Some(job) = jobs.first() {
                let note = if quarantined { " [quarantined]" } else { "" };
                inner.events.record(
                    format!("panic model={name}{note}: {message}"),
                    &job.trace,
                    job.trace.total(),
                );
            }
            let err = ServeError::Internal(format!(
                "model `{name}` panicked while predicting: {message}"
            ));
            for mut job in jobs {
                job.trace.mark_for(Stage::Predict, predict_elapsed);
                finish(inner, Some(name), job, Err(err.clone()));
            }
        }
    }
}

/// Picks the model for a request: an explicit name wins; otherwise the
/// lexicographically-first pair model for 2-app bags (the paper's model)
/// falling back to the first n-bag model, which is also the default for
/// larger bags.
fn resolve_model(
    registry: &ModelRegistry,
    name: &Option<String>,
    arity: usize,
) -> Result<(String, Arc<ServableModel>), ServeError> {
    if let Some(name) = name {
        let model = registry
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.clone()))?;
        return Ok((name.clone(), model));
    }
    let names: Vec<String> = registry.list().into_iter().map(|(n, _)| n).collect();
    let mut pair_default = None;
    let mut nbag_default = None;
    for candidate in names {
        if let Some(model) = registry.get(&candidate) {
            match (&*model, &pair_default) {
                (ServableModel::Pair(_), None) => pair_default = Some((candidate, model)),
                (ServableModel::NBag(_), _) if nbag_default.is_none() => {
                    nbag_default = Some((candidate, model))
                }
                _ => {}
            }
        }
    }
    let picked = if arity == 2 {
        pair_default.or(nbag_default)
    } else {
        nbag_default
    };
    picked.ok_or_else(|| {
        ServeError::UnknownModel(format!("<no registered model serves {arity}-app bags>"))
    })
}

/// One semantic batch group: jobs sharing a model, plus their collected
/// feature records in job order.
type ModelGroup<R> = (String, Arc<ServableModel>, Vec<Job>, Vec<R>);

/// The features one predict job needs, collected (through the cache)
/// before its group's `predict_batch` call.
enum PreparedRecord {
    Pair(Box<Measurement>),
    NBag(Arc<NBagMeasurement>),
}

/// Preparation failure: the error, tagged with the model name when the
/// request had already resolved to one — so the failure is attributed to
/// that model's metrics, not lost.
type PrepareError = (Option<String>, ServeError);

/// Validates a predict request, resolves its model, counts the request
/// against the resolved model's metrics, and collects its features —
/// everything except the model walk itself, which [`process_batch`]
/// performs once per model group.
fn prepare_predict(
    inner: &Inner,
    model: &Option<String>,
    apps: &[Workload],
    trace: &mut Trace,
) -> Result<(String, Arc<ServableModel>, PreparedRecord), PrepareError> {
    if !(2..=MAX_BAG).contains(&apps.len()) {
        return Err((
            None,
            ServeError::BadRequest(format!(
                "a bag holds 2..={MAX_BAG} apps, got {}",
                apps.len()
            )),
        ));
    }
    let (name, model) = resolve_model(&inner.registry, model, apps.len()).map_err(|e| (None, e))?;
    inner.model_metrics.for_model(&name).on_received();
    // Fence quarantined models *before* feature collection: the request
    // is counted against the model (operators see the refused traffic)
    // but costs nothing else and cannot re-trigger the panic.
    if inner.health.is_quarantined(&name) {
        let err = ServeError::Unavailable(name.clone());
        return Err((Some(name), err));
    }
    let lookup_started = Instant::now();
    let record = match &*model {
        ServableModel::Pair(_) => {
            if apps.len() != 2 {
                return Err((
                    Some(name.clone()),
                    ServeError::Unsupported(format!(
                        "model `{name}` is a pair model; it cannot predict a {}-app bag",
                        apps.len()
                    )),
                ));
            }
            PreparedRecord::Pair(Box::new(
                inner
                    .cache
                    .pair_measurement(Bag::pair(apps[0], apps[1]), &inner.platforms),
            ))
        }
        ServableModel::NBag(_) => {
            let bag = NBag::new(apps.to_vec());
            PreparedRecord::NBag(inner.cache.nbag_measurement(&bag, &inner.platforms))
        }
    };
    // Cache lookup covers hit and miss alike — on a miss the duration
    // includes feature recomputation, which is the point: the histogram
    // shows exactly what misses cost.
    trace.mark_for(Stage::CacheLookup, lookup_started.elapsed());
    Ok((name, model, record))
}

/// Handles one request, returning the outcome plus the name of the model
/// that served it (when one was resolved) for per-model accounting.
fn process(inner: &Inner, request: &Request, trace: &mut Trace) -> (Option<String>, Outcome) {
    match request {
        Request::Predict { model, apps } => match prepare_predict(inner, model, apps, trace) {
            Ok((name, model, record)) => {
                let started = Instant::now();
                let predicted_s = match (&*model, &record) {
                    (ServableModel::Pair(p), PreparedRecord::Pair(m)) => p.predict(m),
                    (ServableModel::NBag(p), PreparedRecord::NBag(m)) => p.predict(m),
                    _ => unreachable!("record kind always matches model kind"),
                };
                trace.mark_for(Stage::Predict, started.elapsed());
                (
                    Some(name.clone()),
                    Ok(Reply::Prediction {
                        model: name,
                        predicted_s,
                    }),
                )
            }
            Err((served_by, err)) => (served_by, Err(err)),
        },
        Request::Schedule {
            model,
            gpus,
            budget_s,
            apps,
        } => {
            if apps.is_empty() {
                return (
                    None,
                    Err(ServeError::BadRequest("no apps to schedule".into())),
                );
            }
            // Arity for default-model resolution: the largest co-run the
            // packer may form. With one GPU and >2 apps only an n-bag
            // model can express the packing.
            let arity = if apps.len() > 2 && *gpus * 2 < apps.len() {
                apps.len().min(MAX_BAG)
            } else {
                2
            };
            let (name, model) = match resolve_model(&inner.registry, model, arity) {
                Ok(resolved) => resolved,
                Err(err) => return (None, Err(err)),
            };
            inner.model_metrics.for_model(&name).on_received();
            let started = Instant::now();
            let outcome = admission::admit(
                &model,
                &inner.cache,
                &inner.platforms,
                *gpus,
                *budget_s,
                apps,
            )
            .map(Reply::Schedule);
            // The admission decision includes the feature lookups the
            // packer performs for its candidate co-runs.
            trace.mark_for(Stage::Admission, started.elapsed());
            (Some(name), outcome)
        }
        Request::Stats { model: None } => {
            let queue_depth = inner.queue_depth();
            (
                None,
                Ok(Reply::Stats(Box::new(StatsReport {
                    metrics: inner.metrics.snapshot(),
                    cache_hits: inner.cache.hits(),
                    cache_misses: inner.cache.misses(),
                    cache_hit_rate: inner.cache.hit_rate(),
                    cache_entries: inner.cache.len(),
                    cache_evictions: inner.cache.evictions(),
                    cache_maps: inner.cache.map_stats(),
                    models: inner.registry.len(),
                    queue_depth,
                    workers: inner.config.workers,
                    slow_captured: inner.events.recorded(),
                    worker_panics: inner.robust.worker_panics(),
                    worker_respawns: inner.robust.worker_respawns(),
                    deadline_expired: inner.robust.deadline_expired(),
                    quarantines: inner.robust.quarantines(),
                    quarantined_models: inner.health.quarantined_count(),
                    faults_injected: inner.config.faults.injected(),
                    shards: inner.shard_snapshots(),
                    outcomes_matched: inner.outcomes.matched(),
                    outcomes_orphaned: inner.outcomes.orphaned(),
                    outcomes_expired: inner.outcomes.expired(),
                    outcomes_pending: inner.pending.len(),
                    drift_alarms: inner.outcomes.drift_alarms(),
                    drifting_models: inner.health.drifting_count(),
                    cancelled: inner.robust.cancelled(),
                    cancel_late: inner.robust.cancel_late(),
                    hedge_deduped: inner.robust.hedge_deduped(),
                    brownout_shed: brownout_shed_by_class(inner),
                }))),
            )
        }
        Request::Stats { model: Some(name) } => (None, model_stats(inner, name)),
        Request::Models => (None, Ok(Reply::Models(inner.registry.list()))),
        Request::Metrics => (None, Ok(Reply::Metrics(observe::render(inner)))),
        Request::Health => {
            let reports = inner
                .registry
                .list()
                .into_iter()
                .map(|(name, _)| inner.health.report_for(&name))
                .collect();
            let map = inner.shard_map();
            let max_depth = map
                .values()
                .map(|s| s.depth())
                .chain(std::iter::once(inner.control.depth()))
                .max()
                .unwrap_or(0);
            let pressure = BrownoutPressure {
                shed: brownout_shed_by_class(inner),
                max_depth,
                queue_capacity: inner.config.queue_capacity,
            };
            (None, Ok(Reply::Health { reports, pressure }))
        }
        Request::Cancel { id } => (
            None,
            Ok(Reply::Cancelled {
                pending: do_cancel(inner, *id),
            }),
        ),
        Request::Trace => (None, Ok(Reply::Traces(inner.events.dump()))),
        Request::Observe { id, actual_us } => {
            let (entry, expired) = inner.pending.take(*id);
            inner.outcomes.on_expired(expired);
            let Some(pending) = entry else {
                inner.outcomes.on_orphaned();
                return (None, Ok(Reply::Observed { matched: false }));
            };
            inner.outcomes.on_matched();
            let tracker = inner.trackers.for_model(&pending.model);
            let fired = tracker.observe(pending.predicted_us, (*actual_us).max(1));
            // `fired` is an edge (the detector latches until an admin
            // load/reload re-arms it), so the alarm counter, the sticky
            // advisory health flag, and the event capture fire once per
            // episode. Advisory only: drift never sheds traffic.
            if fired && inner.health.mark_drifting(&pending.model) {
                inner.outcomes.on_drift_alarm();
                let window = tracker.window();
                inner.events.record(
                    format!(
                        "drift model={} online_mape={:.1}% ewma_mape={:.1}%",
                        pending.model,
                        window.online_mape_percent(),
                        window.ewma_mape_percent()
                    ),
                    trace,
                    trace.total(),
                );
            }
            // Attribution: the observe itself was served by the control
            // shard, not the model — per-model serve metrics stay pure.
            (None, Ok(Reply::Observed { matched: true }))
        }
        Request::Load { model, path } => (None, do_load(inner, model, path)),
        Request::Save { model, dest } => (None, do_save(inner, model.as_deref(), dest.as_deref())),
        Request::Reload { model, path } => (None, do_reload(inner, model, path.as_deref())),
    }
}

/// The per-class brownout shed totals in [`Priority::ALL`] order.
fn brownout_shed_by_class(inner: &Inner) -> [u64; 3] {
    let mut shed = [0u64; 3];
    for (slot, priority) in shed.iter_mut().zip(Priority::ALL) {
        *slot = inner.robust.brownout_shed(priority);
    }
    shed
}

/// `stats model=<name>`: the model's counters. The name must be
/// registered; a registered model with no traffic reports zeros.
fn model_stats(inner: &Inner, name: &str) -> Outcome {
    if inner.registry.get(name).is_none() {
        return Err(ServeError::UnknownModel(name.into()));
    }
    let metrics = match inner.model_metrics.get(name) {
        Some(metrics) => metrics.snapshot(),
        None => Metrics::new().snapshot(),
    };
    Ok(Reply::ModelStats {
        model: name.into(),
        metrics: Box::new(metrics),
        shard: inner.shard_snapshot_for(name).map(Box::new),
    })
}

/// Rejects model names unusable as snapshot file stems. Snapshot paths
/// are derived as `<snapshot_dir>/<name>.bagsnap`, so a name carrying
/// path separators or `..` would let `save`/`reload` escape the snapshot
/// directory; only a conservative allowlist gets through.
fn validate_model_name(name: &str) -> Result<(), ServeError> {
    let allowed = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-');
    if name.is_empty()
        || name.len() > 128
        || !name.chars().all(allowed)
        || name.chars().all(|c| c == '.')
    {
        return Err(ServeError::BadRequest(format!(
            "invalid model name `{name}`: use 1..=128 chars from [A-Za-z0-9._-], not all dots"
        )));
    }
    Ok(())
}

/// Confines a client-supplied path to the configured snapshot directory:
/// `..` components are rejected outright, relative paths resolve inside
/// the directory, and absolute paths must already lie inside it. This is
/// what keeps a (even admin-enabled) TCP client from reading or writing
/// arbitrary files with the server's privileges — in-process callers
/// with real filesystem intent use [`crate::ModelRegistry`] directly.
fn confine_to_snapshot_dir(inner: &Inner, raw: &str) -> Result<PathBuf, ServeError> {
    use std::path::{Component, Path};
    let dir = inner.config.snapshot_dir.as_ref().ok_or_else(|| {
        ServeError::BadRequest(
            "no snapshot dir configured (serve --models DIR); admin paths resolve inside it".into(),
        )
    })?;
    let path = Path::new(raw);
    if path.components().any(|c| matches!(c, Component::ParentDir)) {
        return Err(ServeError::BadRequest(format!(
            "path `{raw}` must not contain `..`"
        )));
    }
    if path.has_root() {
        if path.starts_with(dir) {
            Ok(path.to_path_buf())
        } else {
            Err(ServeError::BadRequest(format!(
                "path `{raw}` escapes the snapshot dir `{}`",
                dir.display()
            )))
        }
    } else {
        Ok(dir.join(path))
    }
}

/// `load model=<name> path=<file>`: decode (checksum-verified) and
/// register, replacing any same-named model atomically. The name and
/// path are client-supplied, so both are validated/confined.
fn do_load(inner: &Inner, name: &str, path: &str) -> Outcome {
    validate_model_name(name)?;
    let path = confine_to_snapshot_dir(inner, path)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ServeError::Snapshot(format!("read {}: {e}", path.display())))?;
    let model = ServableModel::from_snapshot(&text)?;
    let desc = model.describe();
    let replaced = inner.registry.get(name).is_some();
    inner.registry.insert(name, model);
    // A fresh copy starts with a clean bill of health: installing it is
    // the documented way out of quarantine — and re-arms the drift
    // detector so the new copy gets a fresh change-point baseline.
    inner.health.clear(name);
    if let Some(tracker) = inner.trackers.get(name) {
        tracker.reset_detector();
    }
    // A newly registered model gets its own shard (queue + workers),
    // installed by atomically swapping the shard map — in-flight
    // routing sees either the old complete map or the new one.
    inner.ensure_shard(name);
    Ok(Reply::Loaded {
        model: name.into(),
        desc,
        replaced,
    })
}

/// Resolves an optional wire path against the configured snapshot
/// directory (both explicit and derived paths stay confined to it),
/// erroring when no directory is configured.
fn snapshot_path(inner: &Inner, explicit: Option<&str>, name: &str) -> Result<PathBuf, ServeError> {
    match explicit {
        Some(path) => confine_to_snapshot_dir(inner, path),
        None => {
            validate_model_name(name)?;
            confine_to_snapshot_dir(inner, &format!("{name}.bagsnap"))
        }
    }
}

/// `save [model=<name>] [path=<dest>]`: one model to a file, or the
/// whole registry to a directory.
fn do_save(inner: &Inner, model: Option<&str>, dest: Option<&str>) -> Outcome {
    match model {
        Some(name) => {
            let path = snapshot_path(inner, dest, name)?;
            let text = inner.registry.snapshot(name)?;
            snapshot::write_snapshot_file(&path, &text, &inner.config.faults)?;
            Ok(Reply::Saved {
                model: Some(name.into()),
                count: 1,
                dest: path.display().to_string(),
            })
        }
        None => {
            let dir = match dest {
                Some(dir) => confine_to_snapshot_dir(inner, dir)?,
                None => inner.config.snapshot_dir.clone().ok_or_else(|| {
                    ServeError::BadRequest(
                        "no snapshot dir configured (serve --models DIR); pass path=DIR".into(),
                    )
                })?,
            };
            let count = inner.registry.save_dir_with(&dir, &inner.config.faults)?;
            Ok(Reply::Saved {
                model: None,
                count,
                dest: dir.display().to_string(),
            })
        }
    }
}

/// `reload model=<name> [path=<file>]`: swap a *registered* model with a
/// fresh decode of its snapshot. The registry insert is atomic — requests
/// already holding the old `Arc` finish on the old version, later ones
/// resolve the new one; nothing queued is dropped.
fn do_reload(inner: &Inner, name: &str, path: Option<&str>) -> Outcome {
    if inner.registry.get(name).is_none() {
        return Err(ServeError::UnknownModel(name.into()));
    }
    let path = snapshot_path(inner, path, name)?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ServeError::Snapshot(format!("read {}: {e}", path.display())))?;
    let model = ServableModel::from_snapshot(&text)?;
    let desc = model.describe();
    inner.registry.insert(name, model);
    // Reload is the documented way out of quarantine: the fresh decode
    // starts healthy, with a re-armed drift detector.
    inner.health.clear(name);
    if let Some(tracker) = inner.trackers.get(name) {
        tracker.reset_detector();
    }
    // Normally a no-op (the shard was created at start or load time);
    // covers models inserted into the registry behind the engine's back.
    inner.ensure_shard(name);
    Ok(Reply::Reloaded {
        model: name.into(),
        desc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{NBAG_MODEL, PAIR_MODEL};
    use crate::testutil;
    use bagpred_workloads::Benchmark;

    fn service() -> Arc<PredictionService> {
        PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        )
    }

    fn pair_apps() -> Vec<Workload> {
        vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        ]
    }

    #[test]
    fn served_prediction_is_bit_identical_to_direct_predictor() {
        let service = service();
        let reply = service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("predicts");
        let Reply::Prediction { model, predicted_s } = reply else {
            panic!("wrong reply kind")
        };
        assert_eq!(model, PAIR_MODEL);

        let registry = testutil::registry();
        let ServableModel::Pair(predictor) = &*registry.get(PAIR_MODEL).expect("registered") else {
            panic!()
        };
        let record = service.cache().pair_measurement(
            Bag::pair(pair_apps()[0], pair_apps()[1]),
            &Platforms::paper(),
        );
        assert_eq!(predicted_s.to_bits(), predictor.predict(&record).to_bits());
        service.shutdown();
    }

    #[test]
    fn default_model_resolution_prefers_pair_for_two_apps() {
        let service = service();
        let Ok(Reply::Prediction { model, .. }) = service.call(Request::Predict {
            model: None,
            apps: pair_apps(),
        }) else {
            panic!("predict failed")
        };
        assert_eq!(
            model, PAIR_MODEL,
            "pair models are preferred for 2-app bags"
        );
        service.shutdown();
    }

    #[test]
    fn three_app_bags_route_to_the_nbag_model() {
        let service = service();
        let Ok(Reply::Prediction { model, predicted_s }) = service.call(Request::Predict {
            model: None,
            apps: vec![
                Workload::new(Benchmark::Sift, 20),
                Workload::new(Benchmark::Knn, 40),
                Workload::new(Benchmark::Orb, 10),
            ],
        }) else {
            panic!("predict failed")
        };
        assert_eq!(model, NBAG_MODEL);
        assert!(predicted_s.is_finite() && predicted_s > 0.0);
        service.shutdown();
    }

    #[test]
    fn pair_model_refuses_three_app_bags() {
        let service = service();
        let err = service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: vec![
                    Workload::new(Benchmark::Sift, 20),
                    Workload::new(Benchmark::Knn, 40),
                    Workload::new(Benchmark::Orb, 10),
                ],
            })
            .expect_err("must refuse");
        assert!(matches!(err, ServeError::Unsupported(_)), "{err}");
        service.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_arity_error_cleanly() {
        let service = service();
        assert!(matches!(
            service.call(Request::Predict {
                model: Some("nope".into()),
                apps: pair_apps(),
            }),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            service.call(Request::Predict {
                model: None,
                apps: vec![Workload::new(Benchmark::Sift, 20)],
            }),
            Err(ServeError::BadRequest(_))
        ));
        service.shutdown();
    }

    #[test]
    fn stats_reflect_traffic_and_cache_activity() {
        let service = service();
        for _ in 0..3 {
            service
                .call(Request::Predict {
                    model: None,
                    apps: pair_apps(),
                })
                .expect("predicts");
        }
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert_eq!(stats.metrics.received, 4);
        // The stats request itself is still in flight when it snapshots.
        assert_eq!(stats.metrics.succeeded, 3);
        assert!(stats.cache_hits >= 6, "repeat predicts hit the cache");
        assert!(stats.cache_hit_rate > 0.5);
        assert_eq!(stats.models, 2);
        assert_eq!(stats.workers, ServiceConfig::default().workers);
        service.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_load_instead_of_buffering() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                batch_size: 1,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        // Flood the single worker with cold requests: every bag uses a
        // fresh batch size, so each one pays full feature collection.
        // Submission is orders of magnitude faster than collection, so
        // the size-1 queue must overflow long before the flood ends.
        let mut shed = false;
        let mut pending = Vec::new();
        for batch in 0..2_000usize {
            let outcome = service.submit(Request::Predict {
                model: Some(NBAG_MODEL.into()),
                apps: vec![
                    Workload::new(Benchmark::Sift, 10 + batch),
                    Workload::new(Benchmark::Knn, 10 + batch),
                    Workload::new(Benchmark::Orb, 10 + batch),
                ],
            });
            match outcome {
                Err(ServeError::Overloaded) => {
                    shed = true;
                    break;
                }
                Ok(rx) => pending.push(rx),
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(shed, "bounded queue must reject under sustained overload");
        for rx in pending {
            rx.recv().expect("worker finishes").expect("predict ok");
        }
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert!(stats.metrics.shed >= 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let service = service();
        service.shutdown();
        assert!(matches!(
            service.call(Request::Stats { model: None }),
            Err(ServeError::ShuttingDown)
        ));
        service.shutdown();
    }

    #[test]
    fn per_model_stats_count_resolved_requests_and_errors() {
        let service = service();
        for _ in 0..3 {
            service
                .call(Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                })
                .expect("predicts");
        }
        // An error *after* model resolution charges the resolved model.
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: vec![
                    Workload::new(Benchmark::Sift, 20),
                    Workload::new(Benchmark::Knn, 40),
                    Workload::new(Benchmark::Orb, 10),
                ],
            })
            .expect_err("pair model refuses a 3-bag");

        let Ok(Reply::ModelStats {
            model,
            metrics,
            shard,
        }) = service.call(Request::Stats {
            model: Some(PAIR_MODEL.into()),
        })
        else {
            panic!("model stats failed")
        };
        assert_eq!(model, PAIR_MODEL);
        assert_eq!(metrics.received, 4);
        assert_eq!(metrics.succeeded, 3);
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.latency.samples, 4);
        assert_eq!(
            metrics.queue_wait.samples, 4,
            "queue wait is reported separately per model"
        );
        assert_eq!(metrics.service.samples, 4);
        // The sharded engine attributes queue wait to the model's own
        // shard — the queue these jobs actually sat in.
        let shard = shard.expect("sharded engine reports a shard");
        assert_eq!(shard.name, PAIR_MODEL);
        assert_eq!(shard.served, 4);
        assert_eq!(shard.queue_wait.samples, 4);

        // A registered but untouched model reports zeros; an unknown
        // name errors.
        let Ok(Reply::ModelStats { metrics, .. }) = service.call(Request::Stats {
            model: Some(NBAG_MODEL.into()),
        }) else {
            panic!("model stats failed")
        };
        assert_eq!(metrics.received, 0);
        assert!(matches!(
            service.call(Request::Stats {
                model: Some("nope".into())
            }),
            Err(ServeError::UnknownModel(_))
        ));
        service.shutdown();
    }

    #[test]
    fn save_load_reload_round_trip_over_the_engine() {
        let dir = testutil::scratch_dir("engine-admin");
        let service = PredictionService::start(
            // A private registry: `load` inserts a new name, which must
            // not leak into tests sharing the global fixture.
            testutil::fresh_registry(),
            Platforms::paper(),
            ServiceConfig {
                snapshot_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            },
        );

        // save model=pair-tree (into the configured dir)
        let Ok(Reply::Saved { model, count, dest }) = service.call(Request::Save {
            model: Some(PAIR_MODEL.into()),
            dest: None,
        }) else {
            panic!("save failed")
        };
        assert_eq!(model.as_deref(), Some(PAIR_MODEL));
        assert_eq!(count, 1);
        assert!(dest.ends_with("pair-tree.bagsnap"), "{dest}");

        // load it back under a fresh name: a new entry, not a replacement.
        let Ok(Reply::Loaded {
            model,
            desc,
            replaced,
        }) = service.call(Request::Load {
            model: "pair-copy".into(),
            path: dest.clone(),
        })
        else {
            panic!("load failed")
        };
        assert_eq!(
            (model.as_str(), desc.as_str(), replaced),
            ("pair-copy", "pair/tree", false)
        );
        // The copy predicts bit-identically to the original.
        let Ok(Reply::Prediction { predicted_s: a, .. }) = service.call(Request::Predict {
            model: Some(PAIR_MODEL.into()),
            apps: pair_apps(),
        }) else {
            panic!()
        };
        let Ok(Reply::Prediction { predicted_s: b, .. }) = service.call(Request::Predict {
            model: Some("pair-copy".into()),
            apps: pair_apps(),
        }) else {
            panic!()
        };
        assert_eq!(a.to_bits(), b.to_bits());

        // reload swaps in place (implicit path via snapshot_dir)...
        let Ok(Reply::Reloaded { model, desc }) = service.call(Request::Reload {
            model: PAIR_MODEL.into(),
            path: None,
        }) else {
            panic!("reload failed")
        };
        assert_eq!((model.as_str(), desc.as_str()), (PAIR_MODEL, "pair/tree"));
        // ...but refuses names that were never registered.
        assert!(matches!(
            service.call(Request::Reload {
                model: "ghost".into(),
                path: None,
            }),
            Err(ServeError::UnknownModel(_))
        ));

        // save-all writes one snapshot per registered model.
        let Ok(Reply::Saved {
            model: None, count, ..
        }) = service.call(Request::Save {
            model: None,
            dest: None,
        })
        else {
            panic!("save-all failed")
        };
        assert_eq!(count, service.registry().len());
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admin_file_commands_without_a_snapshot_dir_are_rejected() {
        let service = service(); // no snapshot_dir configured
        assert!(matches!(
            service.call(Request::Save {
                model: None,
                dest: None
            }),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            service.call(Request::Reload {
                model: PAIR_MODEL.into(),
                path: None
            }),
            Err(ServeError::BadRequest(_))
        ));
        // `load` paths are confined to the snapshot dir, so without one
        // even an existing file is unreachable — a path error, not a
        // read error.
        assert!(matches!(
            service.call(Request::Load {
                model: "x".into(),
                path: "/nonexistent/snapshot.bagsnap".into()
            }),
            Err(ServeError::BadRequest(_))
        ));
        service.shutdown();
    }

    #[test]
    fn admin_paths_and_model_names_cannot_escape_the_snapshot_dir() {
        let dir = testutil::scratch_dir("engine-confine");
        let service = PredictionService::start(
            testutil::fresh_registry(),
            Platforms::paper(),
            ServiceConfig {
                snapshot_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            },
        );

        // Traversal and absolute escapes die before any filesystem
        // access, whichever command carries them.
        for path in ["../evil.bagsnap", "inner/../../evil", "/etc/passwd"] {
            assert!(
                matches!(
                    service.call(Request::Load {
                        model: "x".into(),
                        path: path.into(),
                    }),
                    Err(ServeError::BadRequest(_))
                ),
                "load path `{path}` must be rejected"
            );
        }
        assert!(matches!(
            service.call(Request::Save {
                model: Some(PAIR_MODEL.into()),
                dest: Some("/tmp/elsewhere.bagsnap".into()),
            }),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            service.call(Request::Reload {
                model: PAIR_MODEL.into(),
                path: Some("../elsewhere.bagsnap".into()),
            }),
            Err(ServeError::BadRequest(_))
        ));

        // Hostile model names are rejected on `load`, and a hostile name
        // already in the registry cannot turn `save`/`reload`'s derived
        // `<dir>/<name>.bagsnap` path into an escape.
        for name in ["", "..", "a/b", "a\\b", "."] {
            assert!(
                matches!(
                    service.call(Request::Load {
                        model: name.into(),
                        path: "whatever.bagsnap".into(),
                    }),
                    Err(ServeError::BadRequest(_))
                ),
                "model name `{name}` must be rejected"
            );
        }
        let hostile = "../pair-escape";
        let snapshot = service.registry().snapshot(PAIR_MODEL).expect("encodes");
        service
            .registry()
            .insert_snapshot(hostile, &snapshot)
            .expect("in-process insert is unrestricted");
        assert!(matches!(
            service.call(Request::Reload {
                model: hostile.into(),
                path: None,
            }),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            service.call(Request::Save {
                model: Some(hostile.into()),
                dest: None,
            }),
            Err(ServeError::BadRequest(_))
        ));

        // Confined-but-missing files are a snapshot error — the path
        // checks above are not just masking read failures.
        assert!(matches!(
            service.call(Request::Load {
                model: "x".into(),
                path: "missing.bagsnap".into(),
            }),
            Err(ServeError::Snapshot(_))
        ));
        // Absolute paths *inside* the dir remain usable (`save` replies
        // hand them out).
        service
            .call(Request::Save {
                model: Some(PAIR_MODEL.into()),
                dest: Some(dir.join("abs.bagsnap").display().to_string()),
            })
            .expect("absolute path inside the snapshot dir is allowed");
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traces_split_queue_wait_from_service_time() {
        let service = service();
        for _ in 0..3 {
            service
                .call(Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                })
                .expect("predicts");
        }
        let snap = service.metrics().snapshot();
        assert_eq!(snap.latency.samples, 3);
        assert_eq!(snap.queue_wait.samples, 3);
        assert_eq!(snap.service.samples, 3);
        // Stage histograms saw every predict stage once per request.
        assert_eq!(service.stages().stage(Stage::QueueWait).count(), 3);
        assert_eq!(service.stages().stage(Stage::CacheLookup).count(), 3);
        assert_eq!(service.stages().stage(Stage::BatchAssembly).count(), 3);
        assert_eq!(service.stages().stage(Stage::Predict).count(), 3);
        // In-process submits never mark Parse; ReplyWrite belongs to the
        // TCP front-end.
        assert_eq!(service.stages().stage(Stage::Parse).count(), 0);
        assert_eq!(service.stages().stage(Stage::ReplyWrite).count(), 0);
        service.shutdown();
    }

    #[test]
    fn slow_requests_are_captured_with_their_span_breakdown() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                // Threshold zero: every request is "slow".
                slow_request_threshold: Duration::ZERO,
                event_log_capacity: 4,
                ..ServiceConfig::default()
            },
        );
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("predicts");
        let events = service.slow_events();
        assert!(!events.is_empty(), "threshold 0 captures everything");
        let predict = events
            .iter()
            .find(|e| e.summary.starts_with("predict"))
            .expect("the predict request was captured");
        assert_eq!(predict.summary, "predict model=pair-tree SIFT@20+KNN@40");
        let stages: Vec<Stage> = predict.stages.iter().map(|(s, _)| *s).collect();
        assert!(stages.contains(&Stage::QueueWait));
        assert!(stages.contains(&Stage::CacheLookup));
        assert!(stages.contains(&Stage::Predict));

        // The default threshold (25ms) must not capture a warm predict.
        let calm = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        calm.cache().pair_measurement(
            Bag::pair(pair_apps()[0], pair_apps()[1]),
            &Platforms::paper(),
        );
        calm.call(Request::Predict {
            model: Some(PAIR_MODEL.into()),
            apps: pair_apps(),
        })
        .expect("predicts");
        assert!(
            calm.slow_events().is_empty(),
            "warm predicts stay under the default threshold"
        );
        calm.shutdown();
        service.shutdown();
    }

    #[test]
    fn exposition_covers_global_and_per_model_series_and_parses() {
        let service = service();
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("predicts");
        let Ok(Reply::Metrics(text)) = service.call(Request::Metrics) else {
            panic!("metrics failed")
        };
        for line in text.lines() {
            assert!(
                bagpred_obs::expo::line_is_valid(line),
                "invalid exposition line: {line}"
            );
        }
        for needle in [
            "# TYPE bagpred_requests_received_total counter",
            "# HELP bagpred_request_latency_us",
            "bagpred_requests_received_total 2",
            "bagpred_request_latency_us_bucket",
            "bagpred_model_received_total{model=\"pair-tree\"} 1",
            "bagpred_model_latency_us_count{model=\"pair-tree\"} 1",
            "bagpred_cache_hits_total{map=\"apps\"}",
            "bagpred_cache_misses_total{map=\"fairness\"}",
            "bagpred_stage_duration_us_count{stage=\"queue_wait\"}",
            "bagpred_queue_depth",
            "bagpred_worker_panics_total 0",
            "bagpred_deadline_expired_total 0",
            "bagpred_cancelled_total 0",
            "bagpred_cancel_late_total 0",
            "bagpred_hedge_deduped_total 0",
            "bagpred_brownout_shed_total{prio=\"high\"} 0",
            "bagpred_brownout_shed_total{prio=\"normal\"} 0",
            "bagpred_brownout_shed_total{prio=\"low\"} 0",
            "bagpred_quarantined_models 0",
            "bagpred_faults_injected_total 0",
            "bagpred_model_quarantined{model=\"pair-tree\"} 0",
            "bagpred_model_drifting{model=\"pair-tree\"} 0",
            "bagpred_trace_ring_dropped_total 0",
            "bagpred_outcomes_matched_total 0",
            "bagpred_outcomes_orphaned_total 0",
            "bagpred_outcomes_expired_total 0",
            "bagpred_outcomes_pending 0",
            "bagpred_drift_alarms_total 0",
            "bagpred_drifting_models 0",
            "# EOF",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        service.shutdown();
    }

    #[test]
    fn injected_panic_quarantines_the_model_and_reload_restores_it() {
        let dir = testutil::scratch_dir("engine-quarantine");
        let service = PredictionService::start(
            testutil::fresh_registry(),
            Platforms::paper(),
            ServiceConfig {
                snapshot_dir: Some(dir.clone()),
                quarantine_threshold: 1,
                faults: Arc::new(
                    FaultPlan::parse("worker_panic:model=pair-tree:count=1").expect("parses"),
                ),
                ..ServiceConfig::default()
            },
        );
        // Give `reload` something to decode later.
        service
            .call(Request::Save {
                model: Some(PAIR_MODEL.into()),
                dest: None,
            })
            .expect("saves");

        // First predict: the injected panic is caught, answered as a
        // typed internal error, and (threshold 1) quarantines the model.
        let err = service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect_err("injected panic must surface as an error");
        let ServeError::Internal(why) = &err else {
            panic!("expected Internal, got {err:?}")
        };
        assert!(why.contains("pair-tree"), "{why}");
        assert!(why.contains("injected fault"), "{why}");

        // Second predict: fenced off before any work, typed unavailable.
        let err = service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect_err("quarantined model must refuse");
        assert!(matches!(err, ServeError::Unavailable(_)), "{err:?}");

        // The other model is untouched by the quarantine.
        service
            .call(Request::Predict {
                model: Some(NBAG_MODEL.into()),
                apps: vec![
                    Workload::new(Benchmark::Sift, 20),
                    Workload::new(Benchmark::Knn, 40),
                    Workload::new(Benchmark::Orb, 10),
                ],
            })
            .expect("healthy model keeps serving");

        // `health` and `stats` both tell the story.
        let Ok(Reply::Health { reports, .. }) = service.call(Request::Health) else {
            panic!("health failed")
        };
        let pair = reports
            .iter()
            .find(|r| r.model == PAIR_MODEL)
            .expect("reported");
        assert!(pair.quarantined);
        assert_eq!(pair.total_panics, 1);
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.quarantined_models, 1);
        assert_eq!(stats.faults_injected, 1);

        // Admin reload clears the quarantine; predictions are restored
        // and bit-identical to the snapshot's decode.
        service
            .call(Request::Reload {
                model: PAIR_MODEL.into(),
                path: None,
            })
            .expect("reload succeeds");
        assert!(!service.health().is_quarantined(PAIR_MODEL));
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("restored model serves again");
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aborted_workers_are_respawned_and_keep_serving() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                workers: 1,
                faults: Arc::new(FaultPlan::parse("worker_abort:count=2").expect("parses")),
                ..ServiceConfig::default()
            },
        );
        // The sole worker dies twice on its way to the queue; the
        // supervisor restarts it in place both times, so requests still
        // complete — clients only see added latency, never a hang.
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("served by the respawned worker");
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert_eq!(stats.worker_respawns, 2);
        assert_eq!(stats.faults_injected, 2);
        service.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_at_dequeue_with_a_typed_error() {
        let service = service();
        // A zero budget has always expired by pickup time, whatever the
        // queue does — deterministic without any sleeps.
        let err = service
            .call_traced_deadline(
                Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                },
                Trace::new(),
                Some(Duration::ZERO),
            )
            .expect_err("zero deadline must shed");
        assert!(matches!(err, ServeError::DeadlineExceeded), "{err:?}");
        // No deadline means wait forever — same request succeeds.
        service
            .call_traced_deadline(
                Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                },
                Trace::new(),
                None,
            )
            .expect("no deadline, no shed");
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert_eq!(stats.deadline_expired, 1);
        service.shutdown();
    }

    /// One tagged round trip (the binary protocol's path): submit with a
    /// client-assigned id, wait for the tagged reply.
    fn tagged(service: &PredictionService, id: u64, request: Request) -> Outcome {
        let (tx, rx) = mpsc::channel();
        service
            .submit_tagged(request, Trace::new(), None, Priority::Normal, None, id, tx)
            .expect("enqueues");
        let (got, outcome) = rx.recv().expect("reply arrives");
        assert_eq!(got, id, "reply must carry the request's own id");
        outcome
    }

    /// A tagged predict, returning the prediction in whole microseconds
    /// (the unit `observe` reports in).
    fn tagged_predict_us(service: &PredictionService, id: u64) -> u64 {
        let Ok(Reply::Prediction { predicted_s, .. }) = tagged(
            service,
            id,
            Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            },
        ) else {
            panic!("tagged predict failed")
        };
        (predicted_s * 1e6).round() as u64
    }

    fn observe(service: &PredictionService, id: u64, actual_us: u64) -> bool {
        let Ok(Reply::Observed { matched }) = service.call(Request::Observe { id, actual_us })
        else {
            panic!("observe failed")
        };
        matched
    }

    #[test]
    fn observe_joins_tagged_predictions_once_and_orphans_the_rest() {
        let service = service();
        let predicted_us = tagged_predict_us(&service, 7);

        // A perfect outcome joins the recorded prediction.
        assert!(observe(&service, 7, predicted_us), "first report joins");
        // The join key is consumed: a duplicate report is orphaned, not
        // double-counted into the residual window.
        assert!(!observe(&service, 7, predicted_us), "duplicate orphaned");
        // An id the server never saw is orphaned too.
        assert!(!observe(&service, 999, predicted_us));
        // Direct (in-process) predicts carry no wire id, so they are
        // never recorded — reporting on them is orphaned by design.
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("direct predict");
        assert!(!observe(&service, 1, predicted_us));

        assert_eq!(service.outcomes().matched(), 1);
        assert_eq!(service.outcomes().orphaned(), 3);
        assert_eq!(service.outcomes().expired(), 0);
        let tracker = service
            .outcome_trackers()
            .get(PAIR_MODEL)
            .expect("tracker exists after a matched outcome");
        assert_eq!(tracker.window().matched(), 1);
        assert_eq!(tracker.window().online_mape_percent(), 0.0);

        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats failed")
        };
        assert_eq!(stats.outcomes_matched, 1);
        assert_eq!(stats.outcomes_orphaned, 3);
        assert_eq!(stats.outcomes_pending, 0);
        assert_eq!(stats.drifting_models, 0);
        service.shutdown();
    }

    #[test]
    fn outcome_ring_evicts_by_capacity_and_ttl_as_expired() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                outcome_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let us1 = tagged_predict_us(&service, 1);
        let _us2 = tagged_predict_us(&service, 2);
        let _us3 = tagged_predict_us(&service, 3);
        // Capacity 2: recording id 3 evicted the oldest entry (id 1).
        assert_eq!(service.outcomes().expired(), 1);
        assert!(!observe(&service, 1, us1), "evicted id is orphaned");
        assert!(observe(&service, 2, us1));
        assert!(observe(&service, 3, us1));
        service.shutdown();

        // A (near-)zero TTL expires the entry before the report lands.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                outcome_ttl: Duration::from_nanos(1),
                ..ServiceConfig::default()
            },
        );
        let us = tagged_predict_us(&service, 4);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!observe(&service, 4, us), "expired id is orphaned");
        assert_eq!(service.outcomes().expired(), 1);
        assert_eq!(service.outcomes().orphaned(), 1);
        service.shutdown();

        // Capacity 0 disables tracking: every prediction immediately
        // counts as expired and every report is orphaned.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                outcome_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let us = tagged_predict_us(&service, 5);
        assert_eq!(service.outcomes().expired(), 1);
        assert!(!observe(&service, 5, us));
        service.shutdown();
    }

    #[test]
    fn drift_alarm_latches_flags_health_and_reload_rearms_the_detector() {
        let dir = testutil::scratch_dir("engine-drift");
        let service = PredictionService::start(
            testutil::fresh_registry(),
            Platforms::paper(),
            ServiceConfig {
                snapshot_dir: Some(dir),
                // A hair-trigger detector: no slack, alarm at one unit
                // of accumulated excess error.
                drift_delta: 0.0,
                drift_lambda: 1.0,
                ..ServiceConfig::default()
            },
        );
        // First outcome is perfect (APE 0): Page-Hinkley can never fire
        // on its first sample, and this pins the baseline at zero.
        let us = tagged_predict_us(&service, 1);
        assert!(observe(&service, 1, us));
        assert_eq!(service.outcomes().drift_alarms(), 0);

        // Second outcome is off by 2x (APE 100%): the test statistic
        // jumps to 50, over lambda=1 — the alarm fires deterministically.
        let us = tagged_predict_us(&service, 2);
        assert!(observe(&service, 2, (us / 2).max(1)));
        assert_eq!(service.outcomes().drift_alarms(), 1);

        // The flag is advisory and sticky: health reports it, the
        // exposition flips, but the model keeps serving.
        let Ok(Reply::Health { reports, .. }) = service.call(Request::Health) else {
            panic!("health failed")
        };
        let report = reports
            .iter()
            .find(|r| r.model == PAIR_MODEL)
            .expect("listed");
        assert!(report.drifting, "drift flag latched");
        assert!(!report.quarantined, "drift never quarantines");
        let Ok(Reply::Metrics(text)) = service.call(Request::Metrics) else {
            panic!("metrics failed")
        };
        assert!(
            text.contains("bagpred_model_drifting{model=\"pair-tree\"} 1"),
            "exposition must flip the drift gauge:\n{text}"
        );
        service
            .call(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("a drifting model still serves");
        // The alarm edge was captured in the event ring.
        assert!(
            service
                .slow_events()
                .iter()
                .any(|e| e.summary.starts_with("drift model=pair-tree")),
            "drift edge recorded as an event"
        );

        // Latched means latched: further bad outcomes do not re-alarm.
        let us = tagged_predict_us(&service, 3);
        assert!(observe(&service, 3, (us / 2).max(1)));
        assert_eq!(service.outcomes().drift_alarms(), 1);

        // Reload clears the advisory flag and re-arms the detector.
        service
            .call(Request::Save {
                model: Some(PAIR_MODEL.into()),
                dest: None,
            })
            .expect("saves");
        service
            .call(Request::Reload {
                model: PAIR_MODEL.into(),
                path: None,
            })
            .expect("reloads");
        let Ok(Reply::Health { reports, .. }) = service.call(Request::Health) else {
            panic!("health failed")
        };
        let report = reports
            .iter()
            .find(|r| r.model == PAIR_MODEL)
            .expect("listed");
        assert!(!report.drifting, "reload clears the drift flag");

        // The re-armed detector can fire a second episode.
        let us = tagged_predict_us(&service, 4);
        assert!(observe(&service, 4, us));
        let us = tagged_predict_us(&service, 5);
        assert!(observe(&service, 5, (us / 2).max(1)));
        assert_eq!(service.outcomes().drift_alarms(), 2);
        service.shutdown();
    }

    #[test]
    fn slow_captures_carry_the_upstream_trace_context() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                slow_request_threshold: Duration::ZERO,
                ..ServiceConfig::default()
            },
        );
        service
            .call_traced(
                Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                },
                Trace::with_context("00-abc123-span7-01"),
            )
            .expect("predicts");
        let event = service
            .slow_events()
            .into_iter()
            .find(|e| e.summary.starts_with("predict"))
            .expect("captured");
        assert!(
            event.summary.ends_with(" tc=00-abc123-span7-01"),
            "the capture must name the caller's trace context: {}",
            event.summary
        );
        // And the `trace` dump line carries it too (the summary is the
        // trailing req= field).
        let Ok(Reply::Traces(events)) = service.call(Request::Trace) else {
            panic!("trace failed")
        };
        let line = crate::protocol::format_outcome(&Ok(Reply::Traces(events)));
        assert!(line.contains("tc=00-abc123-span7-01"), "{line}");
        service.shutdown();
    }

    /// A service whose pair-tree worker can be pinned: one worker per
    /// shard, batch size one, and a single armed `slow_predict` fault
    /// that holds the worker inside predict for `ms` milliseconds.
    fn pinnable_service(ms: u64, queue_capacity: usize) -> Arc<PredictionService> {
        PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                workers: 1,
                batch_size: 1,
                queue_capacity,
                faults: Arc::new(
                    FaultPlan::parse(&format!("slow_predict:model=pair-tree:count=1:ms={ms}"))
                        .expect("parses"),
                ),
                ..ServiceConfig::default()
            },
        )
    }

    /// Submits the blocker predict that trips the pin fault and waits
    /// until the worker has picked it up (the shard queue drains).
    fn pin_worker(service: &PredictionService) -> mpsc::Receiver<Outcome> {
        let rx = service
            .submit(Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            })
            .expect("blocker enqueues");
        let deadline = Instant::now() + Duration::from_secs(2);
        while service.inner.queue_depth() > 0 {
            assert!(Instant::now() < deadline, "worker never picked up blocker");
            thread::sleep(Duration::from_millis(1));
        }
        rx
    }

    #[test]
    fn cancelled_jobs_are_dropped_at_dequeue_with_a_typed_error() {
        let service = pinnable_service(400, 64);
        let blocker = pin_worker(&service);
        let (tx, rx) = mpsc::channel();
        service
            .submit_tagged(
                Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                },
                Trace::new(),
                None,
                Priority::Normal,
                None,
                7,
                tx,
            )
            .expect("enqueues behind the blocker");
        // The target is still queued: the cancel is pending, and the
        // worker drops the job the moment it reaches it.
        assert!(service.cancel(7), "queued job cancels as pending");
        let (got, outcome) = rx.recv().expect("cancelled job still answers");
        assert_eq!(got, 7);
        assert!(matches!(outcome, Err(ServeError::Cancelled)), "{outcome:?}");
        blocker.recv().expect("blocker finishes").expect("predicts");
        assert_eq!(service.inner.robust.cancelled(), 1);
        assert_eq!(service.inner.robust.cancel_late(), 0);
        // The dropped job never registered a pending prediction.
        assert_eq!(service.inner.pending.len(), 0);
        // Conservation: every received request was answered.
        let snap = service.metrics().snapshot();
        assert_eq!(snap.received, snap.succeeded + snap.failed);
        service.shutdown();
    }

    #[test]
    fn cancel_after_reply_is_late_and_counted() {
        let service = service();
        let predicted_us = tagged_predict_us(&service, 9);
        assert!(predicted_us > 0);
        // The reply was already delivered: the cancel is late, by fast
        // path and by queued command alike.
        assert!(!service.cancel(9), "completed job cancels as late");
        let Ok(Reply::Cancelled { pending }) = service.call(Request::Cancel { id: 9 }) else {
            panic!("cancel command failed")
        };
        assert!(!pending);
        // An id the server never saw is late too.
        assert!(!service.cancel(424242));
        assert_eq!(service.inner.robust.cancelled(), 0);
        assert_eq!(service.inner.robust.cancel_late(), 3);
        // The prediction's outcome join is untouched by the late cancel.
        assert!(observe(&service, 9, predicted_us));
        service.shutdown();
    }

    #[test]
    fn hedge_pairs_count_the_served_attempt_exactly_once() {
        let service = service();
        // Primary serves first; the hedge arrives after (the in-flight-
        // reply race) and links against the already-finished primary.
        let Ok(Reply::Prediction { .. }) = tagged(
            &service,
            11,
            Request::Predict {
                model: Some(PAIR_MODEL.into()),
                apps: pair_apps(),
            },
        ) else {
            panic!("primary predict failed")
        };
        let (tx, rx) = mpsc::channel();
        service
            .submit_tagged(
                Request::Predict {
                    model: Some(PAIR_MODEL.into()),
                    apps: pair_apps(),
                },
                Trace::new(),
                None,
                Priority::Normal,
                Some(11),
                12,
                tx,
            )
            .expect("hedge enqueues");
        let (got, outcome) = rx.recv().expect("hedge answers");
        assert_eq!(got, 12);
        assert!(outcome.is_ok(), "the duplicate reply is still delivered");

        // Per-model stats counted the served attempt once: two arrivals,
        // one success, one latency sample.
        let snap = service.model_metrics().for_model(PAIR_MODEL).snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.succeeded, 1);
        assert_eq!(snap.latency.samples, 1);
        assert_eq!(service.inner.robust.hedge_deduped(), 1);
        // Only the winner joined the outcome ring; the loser's report
        // is orphaned, never double-feeding the residual window.
        assert_eq!(service.inner.pending.len(), 1);
        assert!(observe(&service, 11, 1_000), "winner joins");
        assert!(!observe(&service, 12, 1_000), "loser orphaned");
        assert_eq!(service.outcomes().matched(), 1);
        assert_eq!(service.outcomes().orphaned(), 1);
        service.shutdown();
    }

    #[test]
    fn hedge_wins_after_a_cancelled_primary_and_counts_once() {
        let service = pinnable_service(400, 64);
        let blocker = pin_worker(&service);
        let predict = Request::Predict {
            model: Some(PAIR_MODEL.into()),
            apps: pair_apps(),
        };
        let (ptx, prx) = mpsc::channel();
        service
            .submit_tagged(
                predict.clone(),
                Trace::new(),
                None,
                Priority::Normal,
                None,
                21,
                ptx,
            )
            .expect("primary enqueues");
        let (htx, hrx) = mpsc::channel();
        service
            .submit_tagged(
                predict,
                Trace::new(),
                None,
                Priority::Normal,
                Some(21),
                22,
                htx,
            )
            .expect("hedge enqueues");
        // The client's hedge won the race elsewhere; cancel the primary
        // while it is still queued.
        assert!(service.cancel(21));
        let (_, primary) = prx.recv().expect("primary answers");
        assert!(matches!(primary, Err(ServeError::Cancelled)), "{primary:?}");
        let (_, hedge) = hrx.recv().expect("hedge answers");
        assert!(hedge.is_ok(), "{hedge:?}");
        blocker.recv().expect("blocker finishes").expect("predicts");

        // The cancelled primary dissolved the pair, so the hedge's
        // serve got full accounting: blocker + hedge = two arrivals,
        // two successes, zero dedups — the logical request still
        // counted exactly once.
        let snap = service.model_metrics().for_model(PAIR_MODEL).snapshot();
        assert_eq!(snap.received, 2);
        assert_eq!(snap.succeeded, 2);
        assert_eq!(snap.failed, 0);
        assert_eq!(service.inner.robust.hedge_deduped(), 0);
        assert_eq!(service.inner.robust.cancelled(), 1);
        // Only the hedge (tagged and served) is awaiting its outcome.
        assert_eq!(service.inner.pending.len(), 1);
        service.shutdown();
    }

    #[test]
    fn brownout_sheds_low_before_normal_before_high() {
        // Capacity 4: low sheds from depth 2, normal from 3, high only
        // at the hard bound.
        let service = pinnable_service(500, 4);
        let blocker = pin_worker(&service);
        let predict = || Request::Predict {
            model: Some(PAIR_MODEL.into()),
            apps: pair_apps(),
        };
        let (tx, rx) = mpsc::channel();
        let mut accepted = 0usize;
        let submit = |id: u64, priority: Priority| {
            service.submit_tagged(
                predict(),
                Trace::new(),
                None,
                priority,
                None,
                id,
                tx.clone(),
            )
        };
        submit(1, Priority::Normal).expect("depth 0 accepts normal");
        submit(2, Priority::Normal).expect("depth 1 accepts normal");
        accepted += 2;
        // Depth 2 = the low watermark: low sheds, normal still fits.
        let err = submit(3, Priority::Low).expect_err("low browns out at depth 2");
        assert!(matches!(err, ServeError::Overloaded), "{err:?}");
        submit(4, Priority::Normal).expect("depth 2 accepts normal");
        accepted += 1;
        // Depth 3 = the normal watermark: normal sheds, high still fits.
        let err = submit(5, Priority::Normal).expect_err("normal browns out at depth 3");
        assert!(matches!(err, ServeError::Overloaded), "{err:?}");
        submit(6, Priority::High).expect("depth 3 accepts high");
        accepted += 1;
        // Depth 4 = the hard bound: even high sheds, but as a plain
        // queue-full rejection, not a brownout.
        let err = submit(7, Priority::High).expect_err("full queue sheds high");
        assert!(matches!(err, ServeError::Overloaded), "{err:?}");

        assert_eq!(service.inner.robust.brownout_shed(Priority::Low), 1);
        assert_eq!(service.inner.robust.brownout_shed(Priority::Normal), 1);
        assert_eq!(service.inner.robust.brownout_shed(Priority::High), 0);
        blocker.recv().expect("blocker finishes").expect("predicts");
        for _ in 0..accepted {
            let (_, outcome) = rx.recv().expect("accepted job answers");
            outcome.expect("accepted job predicts");
        }
        let snap = service.metrics().snapshot();
        assert_eq!(snap.shed, 3, "two brownouts plus one hard-full shed");
        assert_eq!(snap.received, snap.succeeded + snap.failed);
        service.shutdown();
    }

    mod cancel_race_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            /// The cancel-after-reply race, over randomized
            /// interleavings: a canceller thread fires at an arbitrary
            /// point relative to the predict. Whatever interleaving
            /// results, every submitted job answers exactly once, a
            /// cancel that lost the race reports late, and the global
            /// counters conserve.
            #[test]
            fn cancel_reply_races_always_answer_and_conserve(
                delays in proptest::collection::vec(0u64..200, 1..6)
            ) {
                let service = service();
                let mut pending_cancels = 0u64;
                let mut late_cancels = 0u64;
                for (i, &delay_us) in delays.iter().enumerate() {
                    let id = i as u64 + 1;
                    let (tx, rx) = mpsc::channel();
                    service
                        .submit_tagged(
                            Request::Predict {
                                model: Some(PAIR_MODEL.into()),
                                apps: pair_apps(),
                            },
                            Trace::new(),
                            None,
                            Priority::Normal,
                            None,
                            id,
                            tx,
                        )
                        .expect("enqueues");
                    let racer = Arc::clone(&service);
                    let canceller = thread::spawn(move || {
                        thread::sleep(Duration::from_micros(delay_us));
                        racer.cancel(id)
                    });
                    let (got, outcome) = rx.recv().expect("answers exactly once");
                    prop_assert_eq!(got, id);
                    prop_assert!(
                        matches!(outcome, Ok(Reply::Prediction { .. }) | Err(ServeError::Cancelled)),
                        "unexpected outcome: {:?}", outcome
                    );
                    if canceller.join().expect("canceller exits") {
                        pending_cancels += 1;
                    } else {
                        late_cancels += 1;
                    }
                    // The reply is in hand: a second cancel is always late.
                    prop_assert!(!service.cancel(id), "cancel after reply must be late");
                    late_cancels += 1;
                }
                let snap = service.metrics().snapshot();
                prop_assert_eq!(snap.received, snap.succeeded + snap.failed);
                prop_assert_eq!(service.inner.robust.cancel_late(), late_cancels);
                // A pending cancel may still lose to a worker that had
                // already picked the job up; it never over-counts.
                prop_assert!(service.inner.robust.cancelled() <= pending_cancels);
                service.shutdown();
            }
        }
    }
}
