//! Train-once model snapshots and the registry that serves them.
//!
//! Serving must never re-run the 91-run measurement corpus: training
//! happens once (offline or at first boot), the trained model is frozen
//! into a **snapshot** — a self-describing, versioned, checksummed text
//! artifact — and every later process reconstructs a bit-identical
//! predictor from it.
//!
//! # Snapshot envelope
//!
//! ```text
//! bagpred-snapshot v1 model=pair kind=tree checksum=<fnv1a64 hex>
//! scheme Full
//! features CPU GPU mem_rd ... fairness
//! depth 8
//! cpu_time_range 0.123456
//! tree max_depth=8 ... nodes=N
//! <N pre-order node lines>
//! ```
//!
//! The header is version-gated (`v1`) and the checksum covers every
//! payload byte, so a truncated or hand-edited snapshot fails loudly at
//! load time instead of silently serving wrong predictions.

use crate::error::ServeError;
use crate::fault::{FaultPlan, FaultSite};
use bagpred_core::nbag::NBagPredictor;
use bagpred_core::{Feature, FeatureSet, ModelKind, Predictor};
use bagpred_ml::codec::fnv1a64;
use bagpred_ml::{DecisionTreeRegressor, RandomForestRegressor};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Magic + version token opening every snapshot.
const MAGIC: &str = "bagpred-snapshot";
/// Current envelope version.
const VERSION: &str = "v1";

/// A trained model in servable form: either the paper's two-app
/// predictor or the n-bag extension predictor.
#[derive(Debug)]
pub enum ServableModel {
    /// Two-application bag predictor (the paper's model).
    Pair(Predictor),
    /// Order-statistic n-bag predictor (bags of 2..=4 apps).
    NBag(NBagPredictor),
}

fn feature_by_name(name: &str) -> Option<Feature> {
    Feature::ALL.into_iter().find(|f| f.name() == name)
}

impl ServableModel {
    /// Serializes the model into the versioned, checksummed snapshot text.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] when the model is untrained or backed
    /// by a regressor without a text codec (SVR, linear).
    pub fn to_snapshot(&self) -> Result<String, ServeError> {
        let mut payload = String::new();
        let (model_tag, kind_tag) = match self {
            ServableModel::Pair(p) => {
                let kind_tag = match p.model_kind() {
                    ModelKind::DecisionTree => "tree",
                    ModelKind::RandomForest => "forest",
                    other => {
                        return Err(ServeError::Unsupported(format!(
                            "{other:?} predictors have no snapshot codec; \
                             retrain as a tree or forest"
                        )))
                    }
                };
                let range = p.cpu_time_range().ok_or_else(|| {
                    ServeError::Unsupported("cannot snapshot an untrained predictor".into())
                })?;
                payload.push_str(&format!("scheme {}\n", p.scheme().name()));
                payload.push_str("features");
                for f in p.scheme().features() {
                    payload.push(' ');
                    payload.push_str(f.name());
                }
                payload.push('\n');
                payload.push_str(&format!("depth {}\n", p.max_depth()));
                payload.push_str(&format!(
                    "cpu_time_range {}\n",
                    bagpred_ml::codec::fmt_f64(range)
                ));
                match p.model_kind() {
                    ModelKind::DecisionTree => payload.push_str(
                        &p.tree()
                            .expect("tree predictor holds a tree once trained")
                            .to_text(),
                    ),
                    ModelKind::RandomForest => payload.push_str(
                        &p.forest()
                            .expect("forest predictor holds a forest once trained")
                            .to_text(),
                    ),
                    _ => unreachable!("rejected above"),
                }
                ("pair", kind_tag)
            }
            ServableModel::NBag(p) => {
                let tree = p.tree().ok_or_else(|| {
                    ServeError::Unsupported("cannot snapshot an untrained predictor".into())
                })?;
                payload.push_str(&format!("depth {}\n", p.max_depth()));
                payload.push_str(&tree.to_text());
                ("nbag", "tree")
            }
        };
        let checksum = fnv1a64(payload.as_bytes());
        Ok(format!(
            "{MAGIC} {VERSION} model={model_tag} kind={kind_tag} checksum={checksum:016x}\n{payload}"
        ))
    }

    /// Reconstructs a model from snapshot text. The restored model
    /// predicts bit-identically to the one that was serialized.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] on version mismatch, checksum mismatch,
    /// or any structural problem in the payload.
    pub fn from_snapshot(text: &str) -> Result<Self, ServeError> {
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| ServeError::Snapshot("empty snapshot".into()))?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.first() != Some(&MAGIC) {
            return Err(ServeError::Snapshot(format!(
                "not a snapshot: expected `{MAGIC}` header"
            )));
        }
        if tokens.get(1) != Some(&VERSION) {
            return Err(ServeError::Snapshot(format!(
                "unsupported snapshot version `{}` (this build reads {VERSION})",
                tokens.get(1).unwrap_or(&"<missing>")
            )));
        }
        if tokens.len() != 5 {
            return Err(ServeError::Snapshot("malformed snapshot header".into()));
        }
        let model_tag = strip_kv(tokens[2], "model")?;
        let kind_tag = strip_kv(tokens[3], "kind")?;
        let claimed = u64::from_str_radix(strip_kv(tokens[4], "checksum")?, 16)
            .map_err(|_| ServeError::Snapshot("checksum is not hex".into()))?;
        let actual = fnv1a64(payload.as_bytes());
        if claimed != actual {
            return Err(ServeError::Snapshot(format!(
                "checksum mismatch: header says {claimed:016x}, payload hashes to {actual:016x} \
                 (truncated or edited snapshot?)"
            )));
        }

        let mut lines = payload.lines();
        match model_tag {
            "pair" => {
                let scheme_line = lines
                    .next()
                    .ok_or_else(|| ServeError::Snapshot("missing scheme line".into()))?;
                let scheme_name = scheme_line
                    .strip_prefix("scheme ")
                    .ok_or_else(|| ServeError::Snapshot("expected `scheme <name>`".into()))?;
                let features_line = lines
                    .next()
                    .ok_or_else(|| ServeError::Snapshot("missing features line".into()))?;
                let mut parts = features_line.split_whitespace();
                if parts.next() != Some("features") {
                    return Err(ServeError::Snapshot("expected `features ...`".into()));
                }
                let features: Vec<Feature> = parts
                    .map(|name| {
                        feature_by_name(name).ok_or_else(|| {
                            ServeError::Snapshot(format!("unknown feature `{name}`"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if features.is_empty() {
                    return Err(ServeError::Snapshot("feature list is empty".into()));
                }
                let scheme = FeatureSet::new(scheme_name, &features);
                let depth = parse_labeled_usize(lines.next(), "depth")?;
                let range = parse_labeled_f64(lines.next(), "cpu_time_range")?;
                let rest: Vec<&str> = lines.collect();
                let body = rest.join("\n");
                match kind_tag {
                    "tree" => {
                        let tree = DecisionTreeRegressor::from_text(&body)?;
                        Ok(ServableModel::Pair(Predictor::from_trained_tree(
                            scheme, depth, range, tree,
                        )))
                    }
                    "forest" => {
                        let forest = RandomForestRegressor::from_text(&body)?;
                        Ok(ServableModel::Pair(Predictor::from_trained_forest(
                            scheme, depth, range, forest,
                        )))
                    }
                    other => Err(ServeError::Snapshot(format!(
                        "unknown pair model kind `{other}`"
                    ))),
                }
            }
            "nbag" => {
                if kind_tag != "tree" {
                    return Err(ServeError::Snapshot(format!(
                        "nbag models are tree-backed, got `{kind_tag}`"
                    )));
                }
                let depth = parse_labeled_usize(lines.next(), "depth")?;
                let rest: Vec<&str> = lines.collect();
                let tree = DecisionTreeRegressor::from_text(&rest.join("\n"))?;
                if tree.root().is_none() {
                    return Err(ServeError::Snapshot(
                        "snapshot holds an unfitted tree".into(),
                    ));
                }
                Ok(ServableModel::NBag(NBagPredictor::from_trained(
                    depth, tree,
                )))
            }
            other => Err(ServeError::Snapshot(format!("unknown model tag `{other}`"))),
        }
    }

    /// Short human-readable description (`pair/tree`, `nbag/tree`, ...).
    pub fn describe(&self) -> String {
        match self {
            ServableModel::Pair(p) => match p.model_kind() {
                ModelKind::DecisionTree => "pair/tree".into(),
                ModelKind::RandomForest => "pair/forest".into(),
                other => format!("pair/{other:?}"),
            },
            ServableModel::NBag(_) => "nbag/tree".into(),
        }
    }
}

fn strip_kv<'a>(token: &'a str, key: &str) -> Result<&'a str, ServeError> {
    match token.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(ServeError::Snapshot(format!(
            "expected `{key}=<value>` in header, got `{token}`"
        ))),
    }
}

fn parse_labeled_usize(line: Option<&str>, label: &str) -> Result<usize, ServeError> {
    let line = line.ok_or_else(|| ServeError::Snapshot(format!("missing `{label}` line")))?;
    line.strip_prefix(label)
        .map(str::trim)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ServeError::Snapshot(format!("expected `{label} <integer>`, got `{line}`")))
}

fn parse_labeled_f64(line: Option<&str>, label: &str) -> Result<f64, ServeError> {
    let line = line.ok_or_else(|| ServeError::Snapshot(format!("missing `{label}` line")))?;
    line.strip_prefix(label)
        .map(str::trim)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ServeError::Snapshot(format!("expected `{label} <float>`, got `{line}`")))
}

/// A named, thread-safe collection of servable models.
///
/// Models are immutable once registered (swap by re-inserting under the
/// same name — readers holding the old `Arc` finish their request on the
/// old version, the textbook read-mostly registry pattern).
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<ServableModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a model under `name`.
    pub fn insert(&self, name: impl Into<String>, model: ServableModel) -> Arc<ServableModel> {
        let model = Arc::new(model);
        self.models
            .write()
            .expect("registry lock poisoned")
            .insert(name.into(), Arc::clone(&model));
        model
    }

    /// Fetches a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Registered names with their descriptions, sorted by name.
    pub fn list(&self) -> Vec<(String, String)> {
        let mut entries: Vec<(String, String)> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, model)| (name.clone(), model.describe()))
            .collect();
        entries.sort();
        entries
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// True when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the named model to snapshot text.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered names, plus any
    /// snapshot-encoding error.
    pub fn snapshot(&self, name: &str) -> Result<String, ServeError> {
        self.get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.into()))?
            .to_snapshot()
    }

    /// Registers a model decoded from snapshot text under `name`.
    ///
    /// # Errors
    ///
    /// Any snapshot-decoding error; the registry is untouched on failure.
    pub fn insert_snapshot(&self, name: impl Into<String>, text: &str) -> Result<(), ServeError> {
        let model = ServableModel::from_snapshot(text)?;
        self.insert(name, model);
        Ok(())
    }

    /// Writes every registered model to `dir` as `<name>.bagsnap` files,
    /// each via the crash-safe [`write_snapshot_file`] path.
    ///
    /// # Errors
    ///
    /// I/O failures (as `ServeError::Snapshot`) and encoding errors.
    pub fn save_dir(&self, dir: &std::path::Path) -> Result<usize, ServeError> {
        self.save_dir_with(dir, &FaultPlan::none())
    }

    /// [`save_dir`](Self::save_dir) with an armed [`FaultPlan`], so
    /// tests can inject torn writes. Production callers use `save_dir`.
    ///
    /// # Errors
    ///
    /// I/O failures (as `ServeError::Snapshot`) and encoding errors.
    pub fn save_dir_with(
        &self,
        dir: &std::path::Path,
        faults: &FaultPlan,
    ) -> Result<usize, ServeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ServeError::Snapshot(format!("create {}: {e}", dir.display())))?;
        let names: Vec<String> = self.list().into_iter().map(|(n, _)| n).collect();
        for name in &names {
            let text = self.snapshot(name)?;
            let path = dir.join(format!("{name}.bagsnap"));
            write_snapshot_file(&path, &text, faults)?;
        }
        Ok(names.len())
    }

    /// Loads every `*.bagsnap` file in `dir` into the registry, keyed by
    /// file stem. Returns the number of models loaded. A directory that
    /// does not exist yet loads zero models — first boot with a fresh
    /// snapshot directory is not an error. Files that fail to read,
    /// decode, or checksum-verify are **quarantined**, not fatal: see
    /// [`load_dir_report`](Self::load_dir_report).
    ///
    /// # Errors
    ///
    /// Directory-level I/O errors only (as [`ServeError::SnapshotDir`]).
    pub fn load_dir(&self, dir: &std::path::Path) -> Result<usize, ServeError> {
        Ok(self.load_dir_report(dir)?.loaded)
    }

    /// [`load_dir`](Self::load_dir), reporting which corrupt files were
    /// quarantined. A file that fails to read or decode is renamed to
    /// `<file>.corrupt` (best effort) so the next boot does not trip
    /// over it again, counted in the process-wide
    /// [`boot_stats`](crate::metrics::boot_stats), and listed in the
    /// returned [`DirLoad`]; the scan continues. One torn snapshot must
    /// never take down a boot that could serve the other models — or
    /// retrain.
    ///
    /// # Errors
    ///
    /// Directory-level I/O errors only (as [`ServeError::SnapshotDir`]):
    /// an unreadable *directory* is an operator problem, an unreadable
    /// *file* is quarantined.
    pub fn load_dir_report(&self, dir: &std::path::Path) -> Result<DirLoad, ServeError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(DirLoad::default()),
            Err(e) => {
                return Err(ServeError::SnapshotDir(format!(
                    "read {}: {e}",
                    dir.display()
                )))
            }
        };
        let mut report = DirLoad::default();
        for entry in entries {
            let path = entry
                .map_err(|e| ServeError::SnapshotDir(format!("read {}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("bagsnap") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                // A non-UTF-8 stem cannot name a model; leave the file
                // alone (it is not corrupt, just unusable) and move on.
                continue;
            };
            let decoded = std::fs::read_to_string(&path)
                .map_err(|e| ServeError::Snapshot(format!("read {}: {e}", path.display())))
                .and_then(|text| ServableModel::from_snapshot(&text));
            match decoded {
                Ok(model) => {
                    self.insert(name, model);
                    report.loaded += 1;
                }
                Err(_) => {
                    let corrupt = path.with_extension("bagsnap.corrupt");
                    // Rename is metadata-only, so it usually works even
                    // when the file contents are garbage; if it fails the
                    // file stays put and the next boot quarantines again.
                    let moved = std::fs::rename(&path, &corrupt).is_ok();
                    crate::metrics::boot_stats().on_snapshot_quarantined();
                    report.quarantined.push(if moved { corrupt } else { path });
                }
            }
        }
        Ok(report)
    }
}

/// Outcome of a [`ModelRegistry::load_dir_report`] scan.
#[derive(Debug, Default)]
pub struct DirLoad {
    /// Models decoded, verified, and registered.
    pub loaded: usize,
    /// Corrupt snapshot files moved aside as `<file>.corrupt` (or left
    /// in place when even the rename failed), in scan order.
    pub quarantined: Vec<std::path::PathBuf>,
}

/// Writes one snapshot crash-safely: the text goes to a hidden temp
/// file in the destination's directory, is fsynced, and is atomically
/// renamed over `path` — a crash mid-write leaves the old file (or no
/// file), never a torn one. The directory itself is fsynced best-effort
/// so the rename survives power loss on filesystems that need it.
///
/// The [`FaultPlan`] hook simulates the failure this function exists to
/// prevent: a `torn_snapshot_write` fault writes half the bytes
/// straight to the final path, exactly what a plain `fs::write` would
/// leave behind after a crash.
///
/// # Errors
///
/// I/O failures as [`ServeError::Snapshot`]; the temp file is removed
/// on failure.
pub fn write_snapshot_file(
    path: &std::path::Path,
    text: &str,
    faults: &FaultPlan,
) -> Result<(), ServeError> {
    use std::io::Write as _;
    if faults.fire(FaultSite::TornSnapshotWrite, None) {
        let torn = &text.as_bytes()[..text.len() / 2];
        return std::fs::write(path, torn)
            .map_err(|e| ServeError::Snapshot(format!("write {}: {e}", path.display())));
    }
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    // Hidden name, non-`.bagsnap` extension: a leftover temp file from a
    // crash between create and rename is invisible to `load_dir`.
    let tmp = dir.join(format!(".{stem}.tmp-{}", std::process::id()));
    let result = (|| -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    result.map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        ServeError::Snapshot(format!("write {}: {e}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{NBAG_MODEL, PAIR_MODEL};
    use crate::testutil;
    use bagpred_core::nbag::{nbag_corpus, NBagMeasurement};
    use bagpred_core::{Corpus, Platforms};

    #[test]
    fn pair_snapshot_round_trips_bit_identically() {
        let registry = testutil::registry();
        let original = registry.get(PAIR_MODEL).expect("registered");
        let text = original.to_snapshot().expect("encodes");
        let restored = ServableModel::from_snapshot(&text).expect("decodes");

        let platforms = Platforms::paper();
        let records = Corpus::paper().measure_on(&platforms);
        let (ServableModel::Pair(orig), ServableModel::Pair(back)) = (&*original, &restored) else {
            panic!("expected pair models");
        };
        for record in records.iter().take(25) {
            let a = orig.predict(record);
            let b = back.predict(record);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "prediction drifted for {record:?}"
            );
        }
    }

    #[test]
    fn nbag_snapshot_round_trips_bit_identically() {
        let registry = testutil::registry();
        let original = registry.get(NBAG_MODEL).expect("registered");
        let text = original.to_snapshot().expect("encodes");
        let restored = ServableModel::from_snapshot(&text).expect("decodes");

        let platforms = Platforms::paper();
        let (ServableModel::NBag(orig), ServableModel::NBag(back)) = (&*original, &restored) else {
            panic!("expected nbag models");
        };
        for bag in nbag_corpus(5).into_iter().take(15) {
            let record = NBagMeasurement::collect_unlabeled(bag, &platforms);
            assert_eq!(
                orig.predict(&record).to_bits(),
                back.predict(&record).to_bits()
            );
        }
    }

    #[test]
    fn tampered_payload_fails_checksum() {
        let text = testutil::registry().snapshot(PAIR_MODEL).expect("encodes");
        // Flip one digit somewhere in the payload (never the header line).
        let header_end = text.find('\n').expect("has header") + 1;
        let pos = text[header_end..]
            .find(|c: char| c.is_ascii_digit())
            .expect("payload has digits")
            + header_end;
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        let tampered = String::from_utf8(bytes).expect("still utf8");
        let err = ServableModel::from_snapshot(&tampered).expect_err("must fail");
        assert!(
            err.to_string().contains("checksum"),
            "expected a checksum error, got: {err}"
        );
    }

    #[test]
    fn unknown_version_is_rejected_with_version_in_message() {
        let text = testutil::registry().snapshot(PAIR_MODEL).expect("encodes");
        let bumped = text.replacen("bagpred-snapshot v1", "bagpred-snapshot v9", 1);
        let err = ServableModel::from_snapshot(&bumped).expect_err("must fail");
        assert!(
            err.to_string().contains("v9"),
            "message names the version: {err}"
        );
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        assert!(ServableModel::from_snapshot("").is_err());
        assert!(ServableModel::from_snapshot("hello world\n").is_err());
        let text = testutil::registry().snapshot(PAIR_MODEL).expect("encodes");
        let truncated = &text[..text.len() - text.len() / 3];
        assert!(ServableModel::from_snapshot(truncated).is_err());
    }

    #[test]
    fn registry_dir_round_trip_preserves_every_model() {
        let registry = testutil::registry();
        let dir = testutil::scratch_dir("registry");
        let saved = registry.save_dir(&dir).expect("saves");
        assert_eq!(saved, registry.len());

        let restored = ModelRegistry::new();
        let loaded = restored.load_dir(&dir).expect("loads");
        assert_eq!(loaded, saved);
        assert_eq!(restored.list(), registry.list());
        // Re-encoding the restored models reproduces the exact snapshot
        // text, checksum included.
        for (name, _) in registry.list() {
            assert_eq!(
                registry.snapshot(&name).expect("encodes"),
                restored.snapshot(&name).expect("encodes")
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_model_name_errors() {
        let err = testutil::registry()
            .snapshot("no-such-model")
            .expect_err("must fail");
        assert_eq!(err, ServeError::UnknownModel("no-such-model".into()));
    }

    #[test]
    fn truncated_and_bitflipped_snapshots_are_quarantined_then_resave_round_trips() {
        let registry = testutil::registry();
        let dir = testutil::scratch_dir("registry-corrupt");
        registry.save_dir(&dir).expect("saves");

        // Simulate the two classic on-disk failure modes: a torn write
        // (file cut short mid-stream) and silent media corruption (one
        // payload byte flipped under an intact-looking file).
        let pair_path = dir.join(format!("{PAIR_MODEL}.bagsnap"));
        let text = std::fs::read_to_string(&pair_path).expect("reads");
        std::fs::write(&pair_path, &text.as_bytes()[..text.len() / 2]).expect("truncates");
        let nbag_path = dir.join(format!("{NBAG_MODEL}.bagsnap"));
        let mut bytes = std::fs::read(&nbag_path).expect("reads");
        let pos = bytes.len() / 2;
        bytes[pos] = if bytes[pos] == b'7' { b'8' } else { b'7' };
        std::fs::write(&nbag_path, &bytes).expect("flips");

        let before = crate::metrics::boot_stats().snapshots_quarantined();
        let fresh = ModelRegistry::new();
        let report = fresh.load_dir_report(&dir).expect("scan survives");
        assert_eq!(report.loaded, 0, "nothing decodable");
        assert_eq!(report.quarantined.len(), 2);
        for quarantined in &report.quarantined {
            assert!(
                quarantined.to_string_lossy().ends_with(".bagsnap.corrupt"),
                "{quarantined:?}"
            );
            assert!(quarantined.exists(), "moved aside, not deleted");
        }
        assert!(!pair_path.exists() && !nbag_path.exists(), "originals gone");
        assert_eq!(
            crate::metrics::boot_stats().snapshots_quarantined(),
            before + 2
        );

        // A subsequent save writes clean files that round-trip to the
        // exact snapshot text (checksum included) — the `.corrupt`
        // leftovers don't get in the way.
        let saved = registry.save_dir(&dir).expect("re-saves");
        assert_eq!(saved, registry.len());
        let reread = ModelRegistry::new();
        assert_eq!(reread.load_dir(&dir).expect("loads"), saved);
        for (name, _) in registry.list() {
            assert_eq!(
                registry.snapshot(&name).expect("encodes"),
                reread.snapshot(&name).expect("encodes"),
                "re-saved snapshot for `{name}` must be bit-identical"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_writes_are_atomic_and_torn_write_faults_produce_detectable_corruption() {
        let dir = testutil::scratch_dir("registry-atomic");
        let text = testutil::registry().snapshot(PAIR_MODEL).expect("encodes");

        // Normal path: tmp-file + fsync + rename, nothing left behind.
        let path = dir.join("atomic.bagsnap");
        write_snapshot_file(&path, &text, &FaultPlan::none()).expect("writes");
        assert_eq!(std::fs::read_to_string(&path).expect("reads"), text);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("lists")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");

        // Injected torn write: half the bytes land on the *final* path
        // (as a crash mid-`write` without the tmp/rename dance would
        // leave them) — and the checksum catches it on the next load.
        let torn = dir.join("torn.bagsnap");
        let plan = FaultPlan::parse("torn_snapshot_write").expect("parses");
        write_snapshot_file(&torn, &text, &plan).expect("fault swallows the write");
        let written = std::fs::read(&torn).expect("reads");
        assert_eq!(written.len(), text.len() / 2);
        assert!(ServableModel::from_snapshot(&String::from_utf8_lossy(&written)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
