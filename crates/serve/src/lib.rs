//! Online prediction serving for multi-application GPU concurrency.
//!
//! The rest of the workspace reproduces the paper's *offline* pipeline:
//! measure a corpus, train a model, report cross-validated error. This
//! crate is the *online* half — the piece a cluster scheduler would
//! actually call: train once, snapshot the model, and answer
//! `predict`/`schedule` requests from many concurrent clients in
//! microseconds, never re-running the ground-truth co-run simulation
//! that the predictor exists to avoid.
//!
//! Std-only by design (threads, `std::net`, no async runtime): the
//! serving layer inherits the workspace's zero-dependency discipline.
//!
//! # Architecture
//!
//! * [`snapshot`] — versioned, checksummed text snapshots of trained
//!   models and the thread-safe [`ModelRegistry`] serving them.
//! * [`cache`] — memoized feature collection ([`FeatureCache`]): per-app
//!   features keyed by `(benchmark, batch_size)`, fairness and n-bag
//!   aggregates keyed by the canonical bag.
//! * [`engine`] — [`PredictionService`]: a bounded queue + worker pool
//!   with batched draining and explicit load shedding.
//! * [`admission`] — greedy packing of apps onto `k` simulated GPUs
//!   under a predicted-latency budget.
//! * [`metrics`] — request counters and lock-free latency histograms
//!   (end-to-end, queue wait, service time), global and per model
//!   (`stats model=<name>`).
//! * `observe` — per-stage request traces, slow-request capture, and
//!   the Prometheus-text `metrics` exposition (built on `bagpred-obs`).
//! * [`protocol`] / [`server`] — the line-delimited TCP front-end, with
//!   tracked connection threads, bounded reads, and a draining shutdown;
//!   `load`/`save`/`reload` hot-swap models over the wire, and an
//!   optional second listener answers HTTP metric scrapes.
//! * [`bootstrap`] — train-and-register in one call, or boot from a
//!   snapshot directory ([`bootstrap::load_or_train`]), quarantining
//!   corrupt snapshots and retraining instead of aborting.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the
//!   per-model panic/quarantine state ([`ModelHealth`]) behind the
//!   `health` wire command.
//! * [`client`] — a small line-protocol [`Client`] with jittered
//!   exponential backoff on `err overloaded`/`err internal`.
//!
//! # Example
//!
//! ```
//! use bagpred_core::Platforms;
//! use bagpred_serve::{bootstrap, PredictionService, Request, Reply, ServiceConfig};
//! use bagpred_workloads::{Benchmark, Workload};
//!
//! let platforms = Platforms::paper();
//! let registry = bootstrap::default_registry(&platforms);
//! let service = PredictionService::start(registry, platforms, ServiceConfig::default());
//!
//! let reply = service.call(Request::Predict {
//!     model: None,
//!     apps: vec![
//!         Workload::new(Benchmark::Sift, 20),
//!         Workload::new(Benchmark::Knn, 40),
//!     ],
//! });
//! let Ok(Reply::Prediction { predicted_s, .. }) = reply else { panic!() };
//! assert!(predicted_s.is_finite() && predicted_s > 0.0);
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bootstrap;
pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub mod fault;
pub mod frame;
pub mod metrics;
pub(crate) mod observe;
pub mod protocol;
pub mod server;
pub(crate) mod shard;
pub mod snapshot;

pub use admission::{AdmissionPolicy, GpuAssignment, Placement};
pub use cache::{CacheMapStats, FeatureCache};
pub use client::{Client, ClientConfig, ClientError};
pub use engine::{PredictionService, Reply, Request, ServiceConfig, StatsReport};
pub use error::ServeError;
pub use fault::{FaultPlan, FaultSite, HealthReport, ModelHealth};
pub use metrics::{
    BrownoutPressure, LatencySummary, Metrics, MetricsSnapshot, ModelMetrics, ModelOutcome,
    OutcomeCounters, OutcomeTrackers, Priority,
};
pub use server::{MetricsServer, Server, ServerConfig};
pub use snapshot::{DirLoad, ModelRegistry, ServableModel};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: training is the slow part of every serve test,
    //! so the registry is trained once per test binary.

    use crate::snapshot::ModelRegistry;
    use bagpred_core::Platforms;
    use std::sync::{Arc, OnceLock};

    pub fn registry() -> Arc<ModelRegistry> {
        static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
        Arc::clone(REGISTRY.get_or_init(|| crate::bootstrap::default_registry(&Platforms::paper())))
    }

    /// A private registry holding snapshot-decoded copies of the shared
    /// models: tests that insert/replace entries use this so they cannot
    /// perturb tests reading the shared registry concurrently.
    pub fn fresh_registry() -> Arc<ModelRegistry> {
        let shared = registry();
        let fresh = ModelRegistry::new();
        for (name, _) in shared.list() {
            let text = shared.snapshot(&name).expect("snapshot encodes");
            fresh
                .insert_snapshot(name, &text)
                .expect("snapshot decodes");
        }
        Arc::new(fresh)
    }

    /// Joins a thread handle, propagating any panic with the thread's
    /// name and original message attached — so a failing test says
    /// *which* thread died and why, not `Any { .. }`.
    pub fn join_named<T>(handle: std::thread::JoinHandle<T>) -> T {
        let name = handle.thread().name().unwrap_or("<unnamed>").to_string();
        handle.join().unwrap_or_else(|payload| {
            panic!(
                "thread `{name}` panicked: {}",
                crate::fault::panic_message(payload.as_ref())
            )
        })
    }

    /// A fresh scratch directory under the target-local tmp root.
    pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bagpred-serve-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }
}
