//! Error type shared across the serving subsystem.

use bagpred_ml::CodecError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full: explicit load shedding. Clients
    /// should back off and retry; the server stays healthy.
    Overloaded,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request line failed to parse; the payload says why.
    BadRequest(String),
    /// The request named a model the registry does not hold.
    UnknownModel(String),
    /// A model snapshot failed to decode or verify.
    Snapshot(String),
    /// The model exists but cannot serve this request shape (e.g. an SVR
    /// predictor, which has no snapshot codec, or a pair model asked to
    /// predict a 3-bag).
    Unsupported(String),
    /// An admin command (`load`/`save`/`reload`) arrived on a listener
    /// that was not started with admin mode enabled. Admin commands
    /// touch the server's filesystem, so they are opt-in per listener.
    AdminDisabled,
    /// A worker panicked while handling the request. The batch was
    /// isolated and every member answered; the payload names the model
    /// and the panic message. Clients may retry — other models (and a
    /// respawned worker) keep serving.
    Internal(String),
    /// The model is quarantined after repeated panics and refuses
    /// traffic until an admin `load`/`reload` installs a fresh copy.
    Unavailable(String),
    /// The request carried a `deadline_ms` budget and no worker picked
    /// it up in time; it was shed at dequeue instead of serving a reply
    /// nobody is waiting for.
    DeadlineExceeded,
    /// The request was cancelled by id (`cancel id=<req>`) while it
    /// waited in the queue, and dropped at dequeue before predict ran.
    /// This is the hedged-request loser's expected fate — the client
    /// already took the winning reply and is not waiting for this one.
    Cancelled,
    /// The snapshot directory itself is unusable (missing and
    /// uncreatable, or unreadable) — distinct from a single corrupt
    /// snapshot, which is quarantined without failing the boot.
    SnapshotDir(String),
    /// A binary wire frame failed to decode (bad opcode, truncated
    /// payload, oversized length, ...). The payload says what was wrong
    /// with the bytes. Recoverable per frame: when the frame's length
    /// prefix was intact the connection answers `err malformed` and
    /// keeps serving; only an unparseable prelude closes it.
    Malformed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded: request queue is full, retry later"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::Snapshot(why) => write!(f, "snapshot error: {why}"),
            ServeError::Unsupported(why) => write!(f, "unsupported: {why}"),
            ServeError::AdminDisabled => write!(
                f,
                "admin disabled: load/save/reload/trace need a server started with --admin"
            ),
            ServeError::Internal(why) => write!(f, "internal: {why}"),
            ServeError::Unavailable(model) => write!(
                f,
                "unavailable: model `{model}` is quarantined after repeated panics; \
                 reload it to restore service"
            ),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline: request expired before a worker picked it up")
            }
            ServeError::Cancelled => {
                write!(f, "cancelled: request was cancelled before a worker ran it")
            }
            ServeError::SnapshotDir(why) => write!(f, "snapshot dir: {why}"),
            ServeError::Malformed(why) => write!(f, "malformed: {why}"),
        }
    }
}

impl Error for ServeError {}

impl From<CodecError> for ServeError {
    fn from(err: CodecError) -> Self {
        ServeError::Snapshot(err.to_string())
    }
}
