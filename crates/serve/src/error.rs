//! Error type shared across the serving subsystem.

use bagpred_ml::CodecError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full: explicit load shedding. Clients
    /// should back off and retry; the server stays healthy.
    Overloaded,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request line failed to parse; the payload says why.
    BadRequest(String),
    /// The request named a model the registry does not hold.
    UnknownModel(String),
    /// A model snapshot failed to decode or verify.
    Snapshot(String),
    /// The model exists but cannot serve this request shape (e.g. an SVR
    /// predictor, which has no snapshot codec, or a pair model asked to
    /// predict a 3-bag).
    Unsupported(String),
    /// An admin command (`load`/`save`/`reload`) arrived on a listener
    /// that was not started with admin mode enabled. Admin commands
    /// touch the server's filesystem, so they are opt-in per listener.
    AdminDisabled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded: request queue is full, retry later"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::Snapshot(why) => write!(f, "snapshot error: {why}"),
            ServeError::Unsupported(why) => write!(f, "unsupported: {why}"),
            ServeError::AdminDisabled => write!(
                f,
                "admin disabled: load/save/reload/trace need a server started with --admin"
            ),
        }
    }
}

impl Error for ServeError {}

impl From<CodecError> for ServeError {
    fn from(err: CodecError) -> Self {
        ServeError::Snapshot(err.to_string())
    }
}
