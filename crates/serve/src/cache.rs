//! Feature cache for the serving fast path, with an LRU capacity bound.
//!
//! Collecting features for a prediction request means simulating the
//! workload on the CPU and GPU models — cheap next to the ground-truth
//! bag simulation, but still the dominant per-request cost. Features are
//! pure functions of the workload (per-app features key on
//! `(benchmark, batch_size)`, i.e. [`Workload`]) or of the bag (fairness
//! and n-bag aggregates key on the canonicalized bag), so the cache can
//! return bit-identical values forever.
//!
//! The n-bag key space is combinatorial (any multiset of up to four
//! workloads), so a long-lived service cannot let the maps grow without
//! bound. Each map is therefore capped at a configurable capacity and
//! evicts its least-recently-used entry on overflow; evictions only cost
//! a recomputation later, never correctness.
//!
//! Every map keeps its own hit/miss/eviction counters (surfaced by
//! `stats` and the `metrics` exposition as [`CacheMapStats`]), so cache
//! efficacy is observable per quantity, not just in aggregate.

use bagpred_core::nbag::{NBag, NBagMeasurement};
use bagpred_core::{AppFeatures, Bag, Measurement, Platforms};
use bagpred_cpusim::fairness;
use bagpred_trace::KernelProfile;
use bagpred_workloads::Workload;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A `Mutex`-guarded hash map with least-recently-used eviction.
///
/// Recency is a monotonic stamp bumped on every hit and insert; eviction
/// scans for the minimum stamp, which is O(capacity) but runs only when
/// the map is full and capacities are small (hundreds to thousands). A
/// `Mutex` rather than an `RwLock` because even a read must update the
/// recency stamp. Hit/miss/eviction counters live on the map itself so
/// callers get per-map efficacy for free.
#[derive(Debug)]
struct LruMap<K, V> {
    state: Mutex<LruState<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct LruState<K, V> {
    entries: HashMap<K, (V, u64)>,
    clock: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    /// `capacity == 0` means unbounded.
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(LruState {
                entries: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency and counting the outcome.
    fn get(&self, key: &K) -> Option<V> {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.clock += 1;
        let clock = state.clock;
        let found = state.entries.get_mut(key).map(|(value, stamp)| {
            *stamp = clock;
            value.clone()
        });
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts `value` unless `key` is already present (first writer wins,
    /// so every caller sees one canonical value — values are identical
    /// anyway: collection is deterministic). Returns the canonical value;
    /// an eviction made to create room is counted on the map.
    fn insert(&self, key: K, value: V) -> V {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.clock += 1;
        let clock = state.clock;
        if let Some((existing, stamp)) = state.entries.get_mut(&key) {
            *stamp = clock;
            return existing.clone();
        }
        if self.capacity > 0 && state.entries.len() >= self.capacity {
            if let Some(oldest) = state
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                state.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.entries.insert(key, (value.clone(), clock));
        value
    }

    fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    fn stats(&self, name: &'static str) -> CacheMapStats {
        CacheMapStats {
            name,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Point-in-time counters for one of the cache's three maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMapStats {
    /// Stable map name: `apps`, `fairness`, `nbags` or `profiles`.
    pub name: &'static str,
    /// Lookups answered from this map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// Thread-safe, LRU-bounded cache of collected features.
///
/// Four maps, one per cacheable quantity:
///
/// * per-app features, keyed by [`Workload`] (benchmark + batch size);
/// * pair-bag fairness, keyed by [`Bag`];
/// * n-bag aggregate measurements, keyed by [`NBag`];
/// * kernel profiles, keyed by [`Workload`] — profiling runs the real
///   vision kernel, so it is the dominant cost of a *fresh* n-bag
///   measurement; caching it means a new candidate bag over known
///   workloads costs aggregation plus one fairness simulation, never a
///   re-profile.
///
/// Each map holds at most [`capacity`](Self::capacity) entries (0 =
/// unbounded) and evicts least-recently-used on overflow. Hit, miss and
/// eviction counters feed the `stats` command and the `metrics`
/// exposition, both in aggregate and per map ([`Self::map_stats`]).
#[derive(Debug)]
pub struct FeatureCache {
    apps: LruMap<Workload, Arc<AppFeatures>>,
    fairness: LruMap<Bag, f64>,
    nbags: LruMap<NBag, Arc<NBagMeasurement>>,
    profiles: LruMap<Workload, Arc<KernelProfile>>,
    capacity: usize,
}

impl Default for FeatureCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty cache bounding **each** of the three maps at `capacity`
    /// entries; `0` means unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            apps: LruMap::new(capacity),
            fairness: LruMap::new(capacity),
            nbags: LruMap::new(capacity),
            profiles: LruMap::new(capacity),
            capacity,
        }
    }

    /// The per-map entry bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-app features for `workload`, computed on first use.
    pub fn app_features(&self, workload: Workload, platforms: &Platforms) -> Arc<AppFeatures> {
        if let Some(hit) = self.apps.get(&workload) {
            return hit;
        }
        // Compute outside the lock: simulation is the expensive part.
        let computed = Arc::new(AppFeatures::collect(&workload, platforms));
        self.apps.insert(workload, computed)
    }

    /// Fairness of `bag`'s multicore co-run, computed on first use.
    pub fn fairness(&self, bag: Bag, platforms: &Platforms) -> f64 {
        if let Some(hit) = self.fairness.get(&bag) {
            return hit;
        }
        let computed = Measurement::collect_fairness(&bag, platforms);
        self.fairness.insert(bag, computed)
    }

    /// A ground-truth-free [`Measurement`] for a two-app bag, assembled
    /// from cached parts. `bag_gpu_time_s` is NaN — that is the quantity
    /// being predicted.
    pub fn pair_measurement(&self, bag: Bag, platforms: &Platforms) -> Measurement {
        let [a, b] = bag.members();
        let apps = [
            (*self.app_features(a, platforms)).clone(),
            (*self.app_features(b, platforms)).clone(),
        ];
        let fairness = self.fairness(bag, platforms);
        Measurement::from_parts(bag, apps, fairness, f64::NAN)
    }

    /// The kernel profile of `workload`, computed on first use.
    /// Profiling executes the real vision kernel, so this is the single
    /// most expensive cacheable quantity.
    pub fn kernel_profile(&self, workload: Workload) -> Arc<KernelProfile> {
        if let Some(hit) = self.profiles.get(&workload) {
            return hit;
        }
        let computed = Arc::new(workload.profile());
        self.profiles.insert(workload, computed)
    }

    /// A ground-truth-free [`NBagMeasurement`], computed on first use.
    ///
    /// A miss is assembled from the cached per-member parts
    /// ([`NBagMeasurement::from_apps_unlabeled`]): per-app features and
    /// kernel profiles are shared across every bag a member appears in,
    /// so only the Eq. 2 fairness simulation and the order-statistic
    /// aggregation run per fresh bag — bit-identical to a from-scratch
    /// [`NBagMeasurement::collect_unlabeled`].
    pub fn nbag_measurement(&self, bag: &NBag, platforms: &Platforms) -> Arc<NBagMeasurement> {
        if let Some(hit) = self.nbags.get(bag) {
            return hit;
        }
        let apps: Vec<AppFeatures> = bag
            .members()
            .iter()
            .map(|&w| (*self.app_features(w, platforms)).clone())
            .collect();
        let profiles: Vec<KernelProfile> = bag
            .members()
            .iter()
            .map(|&w| (*self.kernel_profile(w)).clone())
            .collect();
        let fair = fairness(platforms.cpu(), &profiles);
        let computed = Arc::new(NBagMeasurement::from_apps_unlabeled(
            bag.clone(),
            &apps,
            fair,
        ));
        self.nbags.insert(bag.clone(), computed)
    }

    /// Per-map counters, in stable order: `apps`, `fairness`, `nbags`,
    /// `profiles`.
    pub fn map_stats(&self) -> [CacheMapStats; 4] {
        [
            self.apps.stats("apps"),
            self.fairness.stats("fairness"),
            self.nbags.stats("nbags"),
            self.profiles.stats("profiles"),
        ]
    }

    /// Lookups answered from the cache (all maps).
    pub fn hits(&self) -> u64 {
        self.map_stats().iter().map(|m| m.hits).sum()
    }

    /// Lookups that had to compute (all maps).
    pub fn misses(&self) -> u64 {
        self.map_stats().iter().map(|m| m.misses).sum()
    }

    /// Entries evicted to respect the capacity bound (all maps).
    pub fn evictions(&self) -> u64 {
        self.map_stats().iter().map(|m| m.evictions).sum()
    }

    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of cached entries across all three maps.
    pub fn len(&self) -> usize {
        self.apps.len() + self.fairness.len() + self.nbags.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_core::Feature;
    use bagpred_workloads::Benchmark;

    #[test]
    fn pair_measurement_matches_direct_collection_bit_for_bit() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = Bag::pair(
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        );
        let cached = cache.pair_measurement(bag, &platforms);
        let direct = Measurement::collect(bag, &platforms);
        for feature in Feature::ALL {
            let slots = if feature.is_bag_level() { 1 } else { 2 };
            for slot in 0..slots {
                assert_eq!(
                    cached.raw_value(feature, slot).to_bits(),
                    direct.raw_value(feature, slot).to_bits(),
                    "{feature} slot {slot}"
                );
            }
        }
        assert!(
            cached.bag_gpu_time_s().is_nan(),
            "serving has no ground truth"
        );
    }

    #[test]
    fn second_lookup_is_all_hits_and_bit_identical() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = Bag::pair(
            Workload::new(Benchmark::Hog, 20),
            Workload::new(Benchmark::Fast, 80),
        );
        let cold = cache.pair_measurement(bag, &platforms);
        assert_eq!(cache.hits(), 0);
        let misses_after_cold = cache.misses();
        assert_eq!(
            misses_after_cold, 3,
            "two app lookups + one fairness lookup"
        );

        let warm = cache.pair_measurement(bag, &platforms);
        assert_eq!(
            cache.misses(),
            misses_after_cold,
            "warm path computes nothing"
        );
        assert_eq!(cache.hits(), 3);
        for feature in Feature::ALL {
            let slots = if feature.is_bag_level() { 1 } else { 2 };
            for slot in 0..slots {
                assert_eq!(
                    cold.raw_value(feature, slot).to_bits(),
                    warm.raw_value(feature, slot).to_bits()
                );
            }
        }
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_map_stats_attribute_traffic_to_the_right_map() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = Bag::pair(
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        );
        cache.pair_measurement(bag, &platforms);
        cache.pair_measurement(bag, &platforms);
        let [apps, fairness, nbags, profiles] = cache.map_stats();
        assert_eq!(apps.name, "apps");
        assert_eq!((apps.hits, apps.misses, apps.entries), (2, 2, 2));
        assert_eq!(fairness.name, "fairness");
        assert_eq!(
            (fairness.hits, fairness.misses, fairness.entries),
            (1, 1, 1)
        );
        assert_eq!(nbags.name, "nbags");
        assert_eq!((nbags.hits, nbags.misses, nbags.entries), (0, 0, 0));
        assert_eq!(profiles.name, "profiles");
        assert_eq!(
            (profiles.hits, profiles.misses, profiles.entries),
            (0, 0, 0),
            "the pair path never profiles"
        );
        assert_eq!(cache.hits(), 3, "aggregate is the sum of the maps");
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn app_features_are_shared_across_bags() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let sift = Workload::new(Benchmark::Sift, 20);
        cache.pair_measurement(
            Bag::pair(sift, Workload::new(Benchmark::Knn, 40)),
            &platforms,
        );
        let misses = cache.misses();
        // A different bag sharing SIFT@20 only misses on KNN@80 + fairness.
        cache.pair_measurement(
            Bag::pair(sift, Workload::new(Benchmark::Knn, 80)),
            &platforms,
        );
        assert_eq!(cache.misses() - misses, 2);
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn nbag_measurement_matches_direct_collection() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = NBag::new(vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
        ]);
        let cached = cache.nbag_measurement(&bag, &platforms);
        let direct = NBagMeasurement::collect_unlabeled(bag.clone(), &platforms);
        assert_eq!(cached.features(), direct.features());
        assert!(cached.bag_gpu_time_s().is_nan());
        let misses = cache.misses();
        cache.nbag_measurement(&bag, &platforms);
        assert_eq!(cache.misses(), misses);
    }

    #[test]
    fn nbag_bags_share_member_profiles_and_app_features() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let sift = Workload::new(Benchmark::Sift, 20);
        let knn = Workload::new(Benchmark::Knn, 40);
        cache.nbag_measurement(
            &NBag::new(vec![sift, knn, Workload::new(Benchmark::Orb, 10)]),
            &platforms,
        );
        let [_, _, _, cold] = cache.map_stats();
        assert_eq!((cold.hits, cold.misses), (0, 3), "three members profiled");
        // A second bag sharing two members re-profiles only the new one.
        cache.nbag_measurement(
            &NBag::new(vec![sift, knn, Workload::new(Benchmark::Hog, 20)]),
            &platforms,
        );
        let [apps, _, nbags, warm] = cache.map_stats();
        assert_eq!((warm.hits, warm.misses), (2, 4));
        assert_eq!((apps.hits, apps.misses), (2, 4));
        assert_eq!(nbags.misses, 2, "each distinct bag assembled once");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        assert_eq!(cache.capacity(), 0);
        for bench in Benchmark::ALL {
            for batch in [10, 20, 40, 80] {
                cache.app_features(Workload::new(bench, batch), &platforms);
            }
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 36);
    }

    #[test]
    fn bounded_cache_respects_capacity() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::with_capacity(3);
        for bench in Benchmark::ALL {
            cache.app_features(Workload::new(bench, 20), &platforms);
        }
        assert!(cache.len() <= 3, "len {} exceeds capacity", cache.len());
        assert_eq!(cache.evictions(), 6);
        let [apps, fairness, _, _] = cache.map_stats();
        assert_eq!(apps.evictions, 6, "evictions attributed to the apps map");
        assert_eq!(fairness.evictions, 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::with_capacity(2);
        let a = Workload::new(Benchmark::Sift, 20);
        let b = Workload::new(Benchmark::Knn, 20);
        let c = Workload::new(Benchmark::Hog, 20);
        cache.app_features(a, &platforms); // {a}
        cache.app_features(b, &platforms); // {a, b}
        cache.app_features(a, &platforms); // hit: a becomes most recent
        cache.app_features(c, &platforms); // evicts b, the LRU entry
        assert_eq!(cache.evictions(), 1);

        let misses = cache.misses();
        cache.app_features(a, &platforms);
        assert_eq!(cache.misses(), misses, "recently used entry survived");
        cache.app_features(b, &platforms);
        assert_eq!(cache.misses(), misses + 1, "LRU entry was evicted");
    }

    #[test]
    fn evicted_entries_recompute_bit_identically() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::with_capacity(1);
        let a = Workload::new(Benchmark::Surf, 40);
        let b = Workload::new(Benchmark::Orb, 40);
        let first = cache.app_features(a, &platforms);
        cache.app_features(b, &platforms); // evicts a
        let again = cache.app_features(a, &platforms); // recomputed
        assert_eq!(*first, *again);
    }
}
