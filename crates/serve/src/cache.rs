//! Feature cache for the serving fast path.
//!
//! Collecting features for a prediction request means simulating the
//! workload on the CPU and GPU models — cheap next to the ground-truth
//! bag simulation, but still the dominant per-request cost. Features are
//! pure functions of the workload (per-app features key on
//! `(benchmark, batch_size)`, i.e. [`Workload`]) or of the bag (fairness
//! and n-bag aggregates key on the canonicalized bag), so the cache can
//! return bit-identical values forever.

use bagpred_core::nbag::{NBag, NBagMeasurement};
use bagpred_core::{AppFeatures, Bag, Measurement, Platforms};
use bagpred_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Thread-safe cache of collected features.
///
/// Three maps, one per cacheable quantity:
///
/// * per-app features, keyed by [`Workload`] (benchmark + batch size);
/// * pair-bag fairness, keyed by [`Bag`];
/// * n-bag aggregate measurements, keyed by [`NBag`].
///
/// Hit/miss counters feed the `stats` command.
#[derive(Debug, Default)]
pub struct FeatureCache {
    apps: RwLock<HashMap<Workload, Arc<AppFeatures>>>,
    fairness: RwLock<HashMap<Bag, f64>>,
    nbags: RwLock<HashMap<NBag, Arc<NBagMeasurement>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-app features for `workload`, computed on first use.
    pub fn app_features(&self, workload: Workload, platforms: &Platforms) -> Arc<AppFeatures> {
        if let Some(hit) = self
            .apps
            .read()
            .expect("cache lock poisoned")
            .get(&workload)
            .cloned()
        {
            self.record(true);
            return hit;
        }
        self.record(false);
        let computed = Arc::new(AppFeatures::collect(&workload, platforms));
        // A racing thread may have inserted meanwhile; keep the first value
        // so every caller sees one canonical Arc (values are identical
        // anyway: collection is deterministic).
        Arc::clone(
            self.apps
                .write()
                .expect("cache lock poisoned")
                .entry(workload)
                .or_insert(computed),
        )
    }

    /// Fairness of `bag`'s multicore co-run, computed on first use.
    pub fn fairness(&self, bag: Bag, platforms: &Platforms) -> f64 {
        if let Some(&hit) = self.fairness.read().expect("cache lock poisoned").get(&bag) {
            self.record(true);
            return hit;
        }
        self.record(false);
        let computed = Measurement::collect_fairness(&bag, platforms);
        *self
            .fairness
            .write()
            .expect("cache lock poisoned")
            .entry(bag)
            .or_insert(computed)
    }

    /// A ground-truth-free [`Measurement`] for a two-app bag, assembled
    /// from cached parts. `bag_gpu_time_s` is NaN — that is the quantity
    /// being predicted.
    pub fn pair_measurement(&self, bag: Bag, platforms: &Platforms) -> Measurement {
        let [a, b] = bag.members();
        let apps = [
            (*self.app_features(a, platforms)).clone(),
            (*self.app_features(b, platforms)).clone(),
        ];
        let fairness = self.fairness(bag, platforms);
        Measurement::from_parts(bag, apps, fairness, f64::NAN)
    }

    /// A ground-truth-free [`NBagMeasurement`], computed on first use.
    pub fn nbag_measurement(&self, bag: &NBag, platforms: &Platforms) -> Arc<NBagMeasurement> {
        if let Some(hit) = self
            .nbags
            .read()
            .expect("cache lock poisoned")
            .get(bag)
            .cloned()
        {
            self.record(true);
            return hit;
        }
        self.record(false);
        let computed = Arc::new(NBagMeasurement::collect_unlabeled(bag.clone(), platforms));
        Arc::clone(
            self.nbags
                .write()
                .expect("cache lock poisoned")
                .entry(bag.clone())
                .or_insert(computed),
        )
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Number of cached entries across all three maps.
    pub fn len(&self) -> usize {
        self.apps.read().expect("cache lock poisoned").len()
            + self.fairness.read().expect("cache lock poisoned").len()
            + self.nbags.read().expect("cache lock poisoned").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_core::Feature;
    use bagpred_workloads::Benchmark;

    #[test]
    fn pair_measurement_matches_direct_collection_bit_for_bit() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = Bag::pair(
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        );
        let cached = cache.pair_measurement(bag, &platforms);
        let direct = Measurement::collect(bag, &platforms);
        for feature in Feature::ALL {
            let slots = if feature.is_bag_level() { 1 } else { 2 };
            for slot in 0..slots {
                assert_eq!(
                    cached.raw_value(feature, slot).to_bits(),
                    direct.raw_value(feature, slot).to_bits(),
                    "{feature} slot {slot}"
                );
            }
        }
        assert!(
            cached.bag_gpu_time_s().is_nan(),
            "serving has no ground truth"
        );
    }

    #[test]
    fn second_lookup_is_all_hits_and_bit_identical() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = Bag::pair(
            Workload::new(Benchmark::Hog, 20),
            Workload::new(Benchmark::Fast, 80),
        );
        let cold = cache.pair_measurement(bag, &platforms);
        assert_eq!(cache.hits(), 0);
        let misses_after_cold = cache.misses();
        assert_eq!(
            misses_after_cold, 3,
            "two app lookups + one fairness lookup"
        );

        let warm = cache.pair_measurement(bag, &platforms);
        assert_eq!(
            cache.misses(),
            misses_after_cold,
            "warm path computes nothing"
        );
        assert_eq!(cache.hits(), 3);
        for feature in Feature::ALL {
            let slots = if feature.is_bag_level() { 1 } else { 2 };
            for slot in 0..slots {
                assert_eq!(
                    cold.raw_value(feature, slot).to_bits(),
                    warm.raw_value(feature, slot).to_bits()
                );
            }
        }
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn app_features_are_shared_across_bags() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let sift = Workload::new(Benchmark::Sift, 20);
        cache.pair_measurement(
            Bag::pair(sift, Workload::new(Benchmark::Knn, 40)),
            &platforms,
        );
        let misses = cache.misses();
        // A different bag sharing SIFT@20 only misses on KNN@80 + fairness.
        cache.pair_measurement(
            Bag::pair(sift, Workload::new(Benchmark::Knn, 80)),
            &platforms,
        );
        assert_eq!(cache.misses() - misses, 2);
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn nbag_measurement_matches_direct_collection() {
        let platforms = Platforms::paper();
        let cache = FeatureCache::new();
        let bag = NBag::new(vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
        ]);
        let cached = cache.nbag_measurement(&bag, &platforms);
        let direct = NBagMeasurement::collect_unlabeled(bag.clone(), &platforms);
        assert_eq!(cached.features(), direct.features());
        assert!(cached.bag_gpu_time_s().is_nan());
        let misses = cache.misses();
        cache.nbag_measurement(&bag, &platforms);
        assert_eq!(cache.misses(), misses);
    }
}
