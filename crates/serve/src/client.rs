//! A small line-protocol client with retry and jittered exponential
//! backoff.
//!
//! The serve front-end sheds load explicitly (`err overloaded`) and
//! isolates worker panics into typed replies (`err internal`) — both are
//! *transient*: the queue drains, the worker respawns, the model may be
//! reloaded. [`Client`] owns the retry loop a well-behaved caller should
//! run on those replies: exponential backoff with deterministic jitter
//! (a seeded xorshift, so tests replay the exact schedule), reconnecting
//! on I/O errors, and giving up with a typed [`ClientError`] once the
//! attempt budget is spent.
//!
//! Non-transient errors (`err bad request`, `err unavailable`,
//! `err deadline`, ...) are returned to the caller unchanged on the
//! first attempt — retrying a quarantined model or a malformed line
//! only adds load.
//!
//! # Protocol negotiation
//!
//! By default the client offers the binary framing on every fresh
//! connection: it sends the [`frame::HELLO_BINARY`] line and, if the
//! server acknowledges with [`frame::HELLO_BINARY_OK`], switches the
//! connection to length-prefixed frames ([`crate::frame`]) — requests
//! still go in as text lines (wrapped in a `Line` frame), but replies
//! skip a decimal round-trip: predictions come back as raw `f64` bits
//! and are re-rendered with the same shortest-roundtrip formatter the
//! server's text path uses, so the reply string is byte-identical
//! either way. A server that answers anything else (an old text-only
//! build replies `err ...`) leaves the connection on the line
//! protocol; [`ClientConfig::prefer_binary`] turns the offer off
//! entirely. Every attempt carries a client-assigned request id —
//! surfaced in [`ClientError::Exhausted`] so a hedging caller can
//! correlate giving-up with server-side traces.
//!
//! On the line protocol the client speaks single-line replies only;
//! multi-line commands (`metrics`, `trace`) need a raw socket or the
//! binary framing, whose length prefix carries them intact.
//!
//! # Hedged requests
//!
//! With [`ClientConfig::hedge`] on and a binary connection, the client
//! keeps a rolling latency histogram and arms a timer at its p95
//! estimate on every send: if the reply has not started arriving by
//! then, a second copy of the request goes out tagged `hedge_of=` the
//! first attempt's id — so the engine counts the pair's served attempt
//! exactly once — and whichever reply lands first wins. The loser is
//! cancelled server-side (fire-and-forget `Cancel` frame) and its
//! straggling reply, if any, is drained as a stale id. A hedge inherits
//! the *remaining* deadline: `deadline_ms=` in the line is rewritten to
//! the budget left since the first attempt's send, and a hedge whose
//! budget is already spent is not sent at all. Until
//! [`ClientConfig::hedge_min_samples`] latencies have been observed the
//! estimator is untrained and no hedge fires.

use crate::frame::{self, Frame, Payload};
use bagpred_ml::codec::fmt_f64;
use bagpred_obs::LogHistogram;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Client`] retry behavior.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every retry after that.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Read/write timeout applied to the socket.
    pub io_timeout: Duration,
    /// Seed for the deterministic jitter; two clients with the same seed
    /// sleep the same schedule. Zero falls back to a fixed default.
    pub jitter_seed: u64,
    /// Offer the binary framing on every fresh connection (one
    /// `hello proto=binary` line). A server that does not acknowledge
    /// leaves the connection on the text protocol, so this is safe
    /// against old servers; turn it off to force text.
    pub prefer_binary: bool,
    /// Fire a hedge (a second copy of the request) when the reply has
    /// not started arriving by the client's rolling p95 latency
    /// estimate. Binary connections only — hedging needs multiplexed
    /// request ids. Off by default: a hedge is extra server load, and
    /// only a tail-latency-sensitive caller should opt in.
    pub hedge: bool,
    /// Latency samples the p95 estimator needs before any hedge fires;
    /// below this the estimate is noise and hedging would be random.
    pub hedge_min_samples: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            prefer_binary: true,
            hedge: false,
            hedge_min_samples: 10,
        }
    }
}

/// Why a [`Client::request`] gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed and reconnecting kept failing.
    Io(std::io::Error),
    /// Every attempt drew a retryable `err` reply; the last one is
    /// included so the caller can still inspect it.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The final reply line received.
        last_reply: String,
        /// The client-assigned request id of every attempt, in order —
        /// on a binary connection these rode the wire, so a hedging
        /// caller can match this failure against server-side traces.
        request_ids: Vec<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "io error: {err}"),
            ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            } => write!(
                f,
                "gave up after {attempts} attempts (request ids {request_ids:?}); \
                 last reply: {last_reply}"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// Whether a reply line signals a transient failure worth retrying.
///
/// `err overloaded` is the queue shedding load and `err internal` is an
/// isolated worker panic; both typically clear within a backoff or two.
pub fn is_retryable(reply: &str) -> bool {
    reply.starts_with("err overloaded") || reply.starts_with("err internal")
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The backoff before retry number `attempt` (0-based): exponential
/// growth capped at `max_backoff`, with deterministic jitter drawn from
/// `rng` over the upper half of the window (`delay/2 ..= delay`), so
/// retries never synchronize into waves but also never fire early.
pub fn backoff_delay(attempt: u32, config: &ClientConfig, rng: &mut u64) -> Duration {
    let base_us = config.base_backoff.as_micros() as u64;
    let max_us = (config.max_backoff.as_micros() as u64).max(base_us);
    let exp_us = base_us
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        .min(max_us);
    let half = exp_us / 2;
    let jitter = if half == 0 {
        0
    } else {
        xorshift(rng) % (half + 1)
    };
    Duration::from_micros(half + jitter)
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this connection negotiated the binary framing.
    binary: bool,
}

/// A reconnecting line-protocol client with retry/backoff.
///
/// Construction is cheap and infallible; the TCP connection is opened
/// lazily on the first [`Client::request`] and re-opened after I/O
/// errors.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    rng: u64,
    retries: u64,
    next_request_id: u64,
    /// Rolling end-to-end latency of answered requests; its p95 is the
    /// hedge trigger.
    latency: LogHistogram,
    /// Wire ids whose replies should be discarded on sight: cancelled
    /// hedge losers, their fire-and-forget cancel acks, and duplicated
    /// frames a fault-injected server may retransmit.
    stale_ids: HashSet<u64>,
    hedges_fired: u64,
    hedge_wins: u64,
}

impl Client {
    /// A client for the server at `addr` with default retry settings.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit retry settings.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        let seed = if config.jitter_seed == 0 {
            ClientConfig::default().jitter_seed
        } else {
            config.jitter_seed
        };
        Client {
            addr,
            config,
            conn: None,
            rng: seed,
            retries: 0,
            next_request_id: 1,
            latency: LogHistogram::new(),
            stale_ids: HashSet::new(),
            hedges_fired: 0,
            hedge_wins: 0,
        }
    }

    /// Retries performed across this client's lifetime (attempts beyond
    /// the first, per request).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Hedges fired across this client's lifetime.
    pub fn hedges_fired(&self) -> u64 {
        self.hedges_fired
    }

    /// Hedges whose reply beat the primary's across this client's
    /// lifetime.
    pub fn hedge_wins(&self) -> u64 {
        self.hedge_wins
    }

    /// Whether the current connection negotiated the binary framing:
    /// `None` before the first connection is opened.
    pub fn is_binary(&self) -> Option<bool> {
        self.conn.as_ref().map(|conn| conn.binary)
    }

    fn connect(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Hedge and cancel frames are small writes racing a reply
            // that has not arrived yet; with Nagle on, the kernel holds
            // them until the server's delayed ACK (up to 40ms) — longer
            // than the tail they exist to cut.
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            let writer = stream.try_clone()?;
            let mut conn = Conn {
                reader: BufReader::new(stream),
                writer,
                binary: false,
            };
            if self.config.prefer_binary {
                // Feature negotiation in the text dialect both sides
                // are guaranteed to share. An old server answers
                // `err ...`; that reply is consumed here, so the
                // connection is clean for the first request either way.
                conn.writer
                    .write_all(format!("{}\n", frame::HELLO_BINARY).as_bytes())?;
                conn.writer.flush()?;
                let mut ack = String::new();
                let n = conn.reader.read_line(&mut ack)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection during negotiation",
                    ));
                }
                conn.binary = ack.trim_end() == frame::HELLO_BINARY_OK;
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection just installed"))
    }

    fn attempt(&mut self, line: &str, request_id: u64) -> std::io::Result<String> {
        self.connect()?;
        let conn = self.conn.as_mut().expect("connection just installed");
        if conn.binary {
            return Self::attempt_binary(conn, &mut self.stale_ids, line, request_id);
        }
        // One write syscall for line + newline: the writer is a raw
        // `TcpStream`, and two small writes become two TCP segments —
        // Nagle then parks the second behind the first's (possibly
        // delayed) ACK, costing tens of milliseconds per request.
        conn.writer.write_all(format!("{line}\n").as_bytes())?;
        conn.writer.flush()?;
        let mut reply = String::new();
        let n = conn.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// One request over the binary framing: the line rides in a `Line`
    /// frame tagged with `request_id`, and the reply frame is rendered
    /// back to the exact string the text protocol would have sent.
    fn attempt_binary(
        conn: &mut Conn,
        stale: &mut HashSet<u64>,
        line: &str,
        request_id: u64,
    ) -> std::io::Result<String> {
        let request = Frame::new(request_id, Payload::Line(line.to_string()));
        conn.writer.write_all(&frame::encode(&request))?;
        conn.writer.flush()?;
        loop {
            let reply = Self::read_frame(&mut conn.reader)?;
            // One request in flight per `Client`, but replies to
            // earlier attempts may straggle after an I/O-timeout retry
            // (or a cancelled hedge loser) on the same connection; drain
            // any id that is not ours.
            if reply.request_id == request_id {
                return Ok(render_reply(reply.payload));
            }
            stale.remove(&reply.request_id);
        }
    }

    fn read_frame(reader: &mut BufReader<TcpStream>) -> std::io::Result<Frame> {
        let mut prelude = [0u8; frame::PRELUDE_LEN];
        reader.read_exact(&mut prelude)?;
        let len = frame::decode_prelude(&prelude)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        frame::decode_body(&body)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))
    }

    /// One attempt with the hedge timer armed (see the module doc's
    /// hedging section). Falls back to a plain attempt on a text
    /// connection or while the p95 estimator is still untrained; either
    /// way the observed latency feeds the estimator. Hedge ids that
    /// actually rode the wire are appended to `request_ids` so
    /// [`ClientError::Exhausted`] can name every attempt.
    fn attempt_hedged(
        &mut self,
        line: &str,
        primary_id: u64,
        request_ids: &mut Vec<u64>,
    ) -> std::io::Result<String> {
        self.connect()?;
        let binary = self.conn.as_ref().is_some_and(|conn| conn.binary);
        let snap = self.latency.snapshot();
        if !binary || snap.count < self.config.hedge_min_samples {
            let started = Instant::now();
            let reply = self.attempt(line, primary_id)?;
            self.latency.record_duration(started.elapsed());
            return Ok(reply);
        }
        // The p95 estimate, floored so the timer never degenerates into
        // hedging every request on a microsecond-fast server.
        let hedge_delay = Duration::from_micros(snap.quantile(0.95).max(100));
        let send_at = Instant::now();
        let hedge_at = send_at + hedge_delay;
        {
            let conn = self.conn.as_mut().expect("connection just installed");
            let request = Frame::new(primary_id, Payload::Line(line.to_string()));
            conn.writer.write_all(&frame::encode(&request))?;
            conn.writer.flush()?;
        }
        // None = timer armed; Some(id) = hedge in flight; Some(primary)
        // doubles as "declined" (deadline spent), so the loop stops
        // re-arming either way.
        let mut hedge_id: Option<u64> = None;
        loop {
            // Wait for reply bytes via `fill_buf` (peeks, consumes
            // nothing) so a timer-driven read timeout cannot tear a
            // frame mid-read.
            let ready = {
                let conn = self.conn.as_mut().expect("connection just installed");
                let timeout = if hedge_id.is_none() {
                    hedge_at
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_micros(100))
                } else {
                    self.config.io_timeout
                };
                conn.reader.get_ref().set_read_timeout(Some(timeout))?;
                match conn.reader.fill_buf() {
                    Ok([]) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        ))
                    }
                    Ok(_) => true,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        false
                    }
                    Err(e) => return Err(e),
                }
            };
            if ready {
                let reply = {
                    let conn = self.conn.as_mut().expect("connection just installed");
                    conn.reader
                        .get_ref()
                        .set_read_timeout(Some(self.config.io_timeout))?;
                    Self::read_frame(&mut conn.reader)?
                };
                let id = reply.request_id;
                let hedged = hedge_id.filter(|&h| h != primary_id);
                if id == primary_id || hedged == Some(id) {
                    // First reply of the pair wins; cancel the loser so
                    // the server can drop it before predict.
                    if let Some(hedge) = hedged {
                        let loser = if id == primary_id { hedge } else { primary_id };
                        if id != primary_id {
                            self.hedge_wins += 1;
                        }
                        self.cancel_quietly(loser);
                    }
                    self.latency.record_duration(send_at.elapsed());
                    return Ok(render_reply(reply.payload));
                }
                self.stale_ids.remove(&id);
                continue;
            }
            if hedge_id.is_none() {
                if Instant::now() < hedge_at {
                    continue; // spurious early timeout; keep waiting
                }
                match hedged_line(line, send_at.elapsed(), primary_id) {
                    Some(hline) => {
                        let id = self.next_request_id;
                        self.next_request_id += 1;
                        request_ids.push(id);
                        let conn = self.conn.as_mut().expect("connection just installed");
                        let request = Frame::new(id, Payload::Line(hline));
                        conn.writer.write_all(&frame::encode(&request))?;
                        conn.writer.flush()?;
                        hedge_id = Some(id);
                        self.hedges_fired += 1;
                    }
                    // The deadline budget is spent: a hedge would be
                    // shed on arrival. Wait out the primary alone.
                    None => hedge_id = Some(primary_id),
                }
                continue;
            }
            // Hedge already in flight (or declined) and a full
            // io_timeout passed with no bytes: the server is stalled,
            // which is exactly what the retry loop's reconnect handles.
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no reply within the io timeout",
            ));
        }
    }

    /// Fire-and-forget server-side cancellation of a hedge loser: one
    /// `Cancel` frame, no waiting. Both the loser's reply (if the
    /// cancel loses its race) and the cancel's own ack are marked stale
    /// so the read loops drain them on sight. Write errors are
    /// swallowed — the winner is already in hand, and a dying socket
    /// surfaces on the next request anyway.
    fn cancel_quietly(&mut self, loser: u64) {
        let cancel_id = self.next_request_id;
        self.next_request_id += 1;
        self.stale_ids.insert(loser);
        self.stale_ids.insert(cancel_id);
        // Stragglers are skipped by id even when not tracked; the set
        // only exists to stay tidy, so keep it bounded.
        if self.stale_ids.len() > 1024 {
            self.stale_ids.clear();
        }
        if let Some(conn) = self.conn.as_mut() {
            let frame = Frame::new(cancel_id, Payload::Cancel { target: loser });
            let _ = conn
                .writer
                .write_all(&frame::encode(&frame))
                .and_then(|()| conn.writer.flush());
        }
    }

    /// Cancels an earlier request by the wire id it rode with, waiting
    /// for the server's verdict: `ok cancel=pending` when the target
    /// was still in flight, `ok cancel=late` when it had already
    /// completed or was never seen. On a text connection this is the
    /// `cancel id=N` line with the usual retry loop.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket fails (single attempt on a
    /// binary connection — by the time a retry landed, the answer would
    /// be `late` regardless).
    pub fn cancel(&mut self, id: u64) -> Result<String, ClientError> {
        self.connect().map_err(ClientError::Io)?;
        if !self.conn.as_ref().is_some_and(|conn| conn.binary) {
            return self.request(&format!("cancel id={id}"));
        }
        let cancel_id = self.next_request_id;
        self.next_request_id += 1;
        let conn = self.conn.as_mut().expect("connection just installed");
        let stale = &mut self.stale_ids;
        let send = (|| -> std::io::Result<String> {
            let request = Frame::new(cancel_id, Payload::Cancel { target: id });
            conn.writer.write_all(&frame::encode(&request))?;
            conn.writer.flush()?;
            loop {
                let reply = Self::read_frame(&mut conn.reader)?;
                if reply.request_id == cancel_id {
                    return Ok(render_reply(reply.payload));
                }
                stale.remove(&reply.request_id);
            }
        })();
        send.map_err(|err| {
            // A dead socket cannot be reused; the next request reconnects.
            self.conn = None;
            ClientError::Io(err)
        })
    }

    /// Send one request line and return the reply line, retrying
    /// transient failures (see [`is_retryable`]) and I/O errors with
    /// jittered exponential backoff. Non-transient `err` replies are
    /// returned as `Ok` — the protocol answered; deciding what to do
    /// with a `bad request` or `unavailable` is the caller's business.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let attempts = self.config.max_attempts.max(1);
        let mut last_io: Option<std::io::Error> = None;
        let mut last_reply: Option<String> = None;
        let mut request_ids = Vec::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                let config = self.config.clone();
                std::thread::sleep(backoff_delay(attempt - 1, &config, &mut self.rng));
            }
            // Every attempt gets a fresh id — a retry is a new request
            // on the wire, so a hedging caller can tell them apart.
            let request_id = self.next_request_id;
            self.next_request_id += 1;
            request_ids.push(request_id);
            let outcome = if self.config.hedge {
                self.attempt_hedged(line, request_id, &mut request_ids)
            } else {
                self.attempt(line, request_id)
            };
            match outcome {
                Ok(reply) if is_retryable(&reply) => last_reply = Some(reply),
                Ok(reply) => return Ok(reply),
                Err(err) => {
                    // A dead socket cannot be reused; reconnect on retry.
                    self.conn = None;
                    last_io = Some(err);
                }
            }
        }
        match (last_reply, last_io) {
            (Some(last_reply), _) => Err(ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            }),
            (None, Some(err)) => Err(ClientError::Io(err)),
            (None, None) => unreachable!("at least one attempt always runs"),
        }
    }

    /// The id the most recent attempt rode the wire with, or `None`
    /// before the first request. This is the id to hand back to
    /// [`report_outcome`](Self::report_outcome) after acting on a
    /// prediction: the server joins the outcome to the prediction it
    /// recorded under that id.
    pub fn last_request_id(&self) -> Option<u64> {
        (self.next_request_id > 1).then(|| self.next_request_id - 1)
    }

    /// Closes the loop on an earlier prediction: reports the runtime
    /// actually observed after acting on it, named by the request id the
    /// prediction was served under (see
    /// [`last_request_id`](Self::last_request_id)). On a binary
    /// connection the report rides a compact `Outcome` frame whose own
    /// request id *is* the join key; on a text connection it falls back
    /// to the `observe` line (where joining requires the server to have
    /// seen the id on the wire, so text-only reports come back
    /// `orphaned`). Returns the reply line: `ok outcome=matched` or
    /// `ok outcome=orphaned`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket fails. The binary path is a
    /// single attempt — retrying an outcome report is pointless, since
    /// the first delivery already consumed (or orphaned) the join key;
    /// the text fallback goes through [`request`](Self::request) and
    /// inherits its retry loop, which is harmless for the same reason:
    /// a replayed report is counted as orphaned, never double-joined.
    pub fn report_outcome(&mut self, id: u64, actual_us: u64) -> Result<String, ClientError> {
        // The text rendering is also the binary fallback: on a binary
        // connection `attempt` wraps it in a Line frame tagged with a
        // fresh id, and the engine reads the join key out of the parsed
        // `observe` verb, so both framings reach the same code path.
        if self.conn.as_ref().is_some_and(|conn| conn.binary) {
            return self.report_outcome_binary(id, actual_us);
        }
        self.request(&format!("observe id={id} actual_us={actual_us}"))
    }

    /// The binary-framed outcome report: 8 payload bytes, joined by the
    /// frame's own request id.
    fn report_outcome_binary(&mut self, id: u64, actual_us: u64) -> Result<String, ClientError> {
        if let Err(err) = self.connect() {
            return Err(ClientError::Io(err));
        }
        let conn = self.conn.as_mut().expect("connection just installed");
        let stale = &mut self.stale_ids;
        let request = Frame::new(id, Payload::Outcome { actual_us });
        let send = (|| -> std::io::Result<String> {
            conn.writer.write_all(&frame::encode(&request))?;
            conn.writer.flush()?;
            loop {
                let reply = Self::read_frame(&mut conn.reader)?;
                if reply.request_id == id {
                    return Ok(render_reply(reply.payload));
                }
                stale.remove(&reply.request_id);
            }
        })();
        send.map_err(|err| {
            // A dead socket cannot be reused; the next request reconnects.
            self.conn = None;
            ClientError::Io(err)
        })
    }
}

/// The wire line for a hedge attempt. A `deadline_ms=` token is
/// rewritten to the *remaining* budget measured from the primary's
/// send — a hedge that inherited the full original budget would happily
/// wait out a deadline the caller has already half-spent. Returns
/// `None` when the budget is gone (the hedge would be shed on
/// arrival). The primary's id rides along as `hedge_of=` so the engine
/// counts the pair's served attempt exactly once.
fn hedged_line(line: &str, elapsed: Duration, primary_id: u64) -> Option<String> {
    let mut tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
    for token in &mut tokens {
        if let Some(raw) = token.strip_prefix("deadline_ms=") {
            let Ok(total) = raw.parse::<u64>() else {
                break; // malformed; the server will reject both copies
            };
            let remaining = total.saturating_sub(elapsed.as_millis() as u64);
            if remaining == 0 {
                return None;
            }
            *token = format!("deadline_ms={remaining}");
            break;
        }
    }
    tokens.push(format!("hedge_of={primary_id}"));
    Some(tokens.join(" "))
}

/// Renders a binary reply frame to the exact string the text protocol
/// would have written for the same outcome: predictions re-render their
/// raw `f64` bits with the server's shortest-roundtrip formatter,
/// framed text replies pass through verbatim, and errors regain their
/// `err ` prefix.
fn render_reply(payload: Payload) -> String {
    match payload {
        Payload::Prediction { model, predicted_s } => {
            format!("ok model={model} predicted_s={}", fmt_f64(predicted_s))
        }
        Payload::LineReply(text) => text,
        Payload::Error { message, .. } => format!("err {message}"),
        // Request opcodes are never valid replies; surface them as a
        // reply the retry classifier treats as non-transient.
        Payload::Predict { .. }
        | Payload::Line(_)
        | Payload::Outcome { .. }
        | Payload::Cancel { .. } => "err bad request: request opcode in a reply frame".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_caps() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
            ..ClientConfig::default()
        };
        let mut rng_a = config.jitter_seed;
        let mut rng_b = config.jitter_seed;
        let schedule_a: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_a))
            .collect();
        let schedule_b: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_b))
            .collect();
        // Same seed, same schedule — tests can replay it exactly.
        assert_eq!(schedule_a, schedule_b);
        for (i, delay) in schedule_a.iter().enumerate() {
            let exp =
                Duration::from_millis(10u64.saturating_mul(1 << i)).min(Duration::from_millis(100));
            // Jitter stays within [exp/2, exp]: never early, never over.
            assert!(*delay >= exp / 2, "attempt {i}: {delay:?} < {:?}", exp / 2);
            assert!(*delay <= exp, "attempt {i}: {delay:?} > {exp:?}");
        }
        // The cap binds: late attempts never exceed max_backoff.
        assert!(schedule_a[7] <= Duration::from_millis(100));
        // Different seeds jitter differently (with overwhelming odds).
        let mut rng_c = 7;
        let schedule_c: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_c))
            .collect();
        assert_ne!(schedule_a, schedule_c);
    }

    #[test]
    fn retryable_classification_matches_the_wire_prefixes() {
        assert!(is_retryable(
            "err overloaded: request queue is full, retry later"
        ));
        assert!(is_retryable("err internal: model `pair-tree` panicked"));
        assert!(!is_retryable("ok model=pair-tree predicted_s=1.5"));
        assert!(!is_retryable("err bad request: empty request"));
        assert!(!is_retryable(
            "err unavailable: model `pair-tree` is quarantined"
        ));
        assert!(!is_retryable("err deadline: request expired"));
        assert!(!is_retryable("err unknown model `nope`"));
    }

    #[test]
    fn exhausted_requests_surface_the_last_reply() {
        // A fake server that always sheds: every attempt reads
        // `err overloaded`, so the client retries then gives up typed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut served = 0u32;
            // One connection; the client keeps it open across retries.
            let (stream, _) = listener.accept().expect("accepts");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                writer
                    .write_all(b"err overloaded: request queue is full, retry later\n")
                    .expect("writes");
                served += 1;
                line.clear();
            }
            served
        });
        let mut client = Client::with_config(
            addr,
            ClientConfig {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                prefer_binary: false, // pure text path
                ..ClientConfig::default()
            },
        );
        let err = client
            .request("predict SIFT@20+KNN@40")
            .expect_err("gives up");
        match err {
            ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            } => {
                assert_eq!(attempts, 3);
                assert!(last_reply.starts_with("err overloaded"), "{last_reply}");
                // One id per attempt, in order — the caller can match
                // them against server-side traces when hedging.
                assert_eq!(request_ids, vec![1, 2, 3]);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(client.retries(), 2);
        assert_eq!(client.is_binary(), Some(false));
        drop(client);
        assert_eq!(server.join().expect("server thread"), 3);
    }

    #[test]
    fn client_falls_back_to_text_when_the_server_declines_binary() {
        // A text-only server: it answers the hello line with an error
        // (as any build predating the binary framing would) and then
        // echoes canned replies. The client must stay on text and the
        // request must still succeed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accepts");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads hello");
            assert_eq!(line.trim_end(), frame::HELLO_BINARY);
            writer
                .write_all(b"err bad request: unknown verb `hello`\n")
                .expect("declines");
            line.clear();
            reader.read_line(&mut line).expect("reads request");
            writer
                .write_all(b"ok model=pair-tree predicted_s=1.5\n")
                .expect("answers");
            line.trim_end().to_string()
        });
        let mut client = Client::new(addr);
        let reply = client.request("predict SIFT@20+KNN@40").expect("succeeds");
        assert_eq!(reply, "ok model=pair-tree predicted_s=1.5");
        assert_eq!(client.is_binary(), Some(false));
        assert_eq!(
            server.join().expect("server thread"),
            "predict SIFT@20+KNN@40",
            "the request must arrive as a plain text line"
        );
    }

    #[test]
    fn client_negotiates_binary_and_renders_identical_reply_lines() {
        use crate::engine::{PredictionService, ServiceConfig};
        use crate::server::Server;
        use bagpred_core::Platforms;
        use std::sync::Arc;

        let service = PredictionService::start(
            crate::testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        let mut text = Client::with_config(
            server.local_addr(),
            ClientConfig {
                prefer_binary: false,
                ..ClientConfig::default()
            },
        );
        let mut binary = Client::new(server.local_addr());

        for line in [
            "predict SIFT@20+KNN@40",
            "predict model=nbag-tree HOG@20+FAST@80+ORB@40",
            "models",
            "health",
            "bogus nonsense", // error replies must match too
        ] {
            let from_text = text.request(line).expect("text reply");
            let from_binary = binary.request(line).expect("binary reply");
            assert_eq!(
                from_binary, from_text,
                "binary and text replies must be byte-identical for `{line}`"
            );
        }
        assert_eq!(text.is_binary(), Some(false));
        assert_eq!(binary.is_binary(), Some(true));
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn report_outcome_closes_the_loop_on_binary_and_orphans_on_text() {
        use crate::engine::{PredictionService, ServiceConfig};
        use crate::server::Server;
        use bagpred_core::Platforms;
        use std::sync::Arc;

        let service = PredictionService::start(
            crate::testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        // Binary connection: the predict rode the wire with a client-
        // assigned id, so the outcome report joins it — exactly once.
        let mut binary = Client::new(server.local_addr());
        assert_eq!(binary.last_request_id(), None, "no request yet");
        let reply = binary.request("predict SIFT@20+KNN@40").expect("predicts");
        let predicted_s: f64 = reply
            .rsplit_once("predicted_s=")
            .expect("has field")
            .1
            .parse()
            .expect("parses");
        let actual_us = (predicted_s * 1e6).round() as u64;
        let id = binary.last_request_id().expect("a request was made");
        assert_eq!(
            binary.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=matched"
        );
        assert_eq!(
            binary.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=orphaned",
            "the join key is consumed by the first report"
        );

        // Text connection: predictions are never recorded (no wire id),
        // so the loop cannot close — the report is counted as orphaned.
        let mut text = Client::with_config(
            server.local_addr(),
            ClientConfig {
                prefer_binary: false,
                ..ClientConfig::default()
            },
        );
        text.request("predict SIFT@20+KNN@40").expect("predicts");
        let id = text.last_request_id().expect("a request was made");
        assert_eq!(
            text.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=orphaned"
        );

        // The server-side accounting saw exactly one join.
        assert_eq!(service.outcomes().matched(), 1);
        assert_eq!(service.outcomes().orphaned(), 2);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn hedged_line_inherits_the_remaining_deadline() {
        // No deadline: the line passes through with only the hedge tag.
        assert_eq!(
            hedged_line("predict SIFT@20+KNN@40", Duration::from_millis(5), 7),
            Some("predict SIFT@20+KNN@40 hedge_of=7".to_string())
        );
        // A deadline is rewritten to the budget *remaining* at hedge
        // time — the hedge must not inherit time the caller already
        // spent waiting on the primary.
        assert_eq!(
            hedged_line(
                "predict deadline_ms=100 SIFT@20+KNN@40",
                Duration::from_millis(30),
                3
            ),
            Some("predict deadline_ms=70 SIFT@20+KNN@40 hedge_of=3".to_string())
        );
        // Budget spent (or overspent): no hedge at all — it would only
        // be shed on arrival.
        assert_eq!(
            hedged_line(
                "predict deadline_ms=100 SIFT@20+KNN@40",
                Duration::from_millis(100),
                3
            ),
            None
        );
        assert_eq!(
            hedged_line(
                "predict deadline_ms=100 SIFT@20+KNN@40",
                Duration::from_millis(250),
                3
            ),
            None
        );
        // A malformed deadline passes through untouched; the server
        // rejects both copies identically.
        assert_eq!(
            hedged_line("predict deadline_ms=soon X@1", Duration::from_millis(5), 9),
            Some("predict deadline_ms=soon X@1 hedge_of=9".to_string())
        );
    }

    #[test]
    fn hedge_beats_a_slow_shard_and_the_pair_counts_once() {
        use crate::engine::{PredictionService, ServiceConfig};
        use crate::fault::FaultPlan;
        use crate::server::Server;
        use bagpred_core::Platforms;
        use std::sync::Arc;

        // One armed fault: the first pair-tree predict stalls 300ms.
        // Two workers per shard so the hedge can overtake the stuck
        // primary instead of queueing behind it.
        let service = PredictionService::start(
            crate::testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                workers: 2,
                faults: Arc::new(
                    FaultPlan::parse("slow_predict:model=pair-tree:count=1:ms=300")
                        .expect("parses"),
                ),
                ..ServiceConfig::default()
            },
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        let mut client = Client::with_config(
            server.local_addr(),
            ClientConfig {
                hedge: true,
                hedge_min_samples: 5,
                io_timeout: Duration::from_secs(5),
                ..ClientConfig::default()
            },
        );
        // Warm the p95 estimator on a model the fault does not target;
        // below min_samples these ride the plain path (no hedges).
        for _ in 0..5 {
            client
                .request("predict model=nbag-tree HOG@20+FAST@80+ORB@40")
                .expect("warmup predicts");
        }
        assert_eq!(client.hedges_fired(), 0, "warmup must not hedge");

        // The slow request: its hedge fires after ~p95 (sub-ms against
        // a warm server) and wins by ~300ms.
        let reply = client
            .request("predict model=pair-tree SIFT@20+KNN@40")
            .expect("hedged predict succeeds");
        assert!(reply.starts_with("ok model=pair-tree"), "{reply}");
        assert_eq!(client.hedges_fired(), 1);
        assert_eq!(client.hedge_wins(), 1, "the hedge must beat the stall");

        // The stalled primary finishes eventually and is deduplicated —
        // the pair's served attempt counts exactly once. Poll `stats`
        // (text connection, independent of the hedging client) until
        // the dedup lands.
        let mut probe = Client::with_config(
            server.local_addr(),
            ClientConfig {
                prefer_binary: false,
                ..ClientConfig::default()
            },
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        let stats = loop {
            let stats = probe.request("stats").expect("stats reply");
            if stats.contains("hedge_deduped=1") || Instant::now() > deadline {
                break stats;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(stats.contains("hedge_deduped=1"), "{stats}");
        // Conservation on the faulted shard: both attempts of the pair
        // were enqueued and both served — the dedup suppressed the
        // loser's accounting, not its execution — and the stall really
        // came from the armed fault.
        assert!(stats.contains("shard_pair-tree_enqueued=2"), "{stats}");
        assert!(stats.contains("shard_pair-tree_served=2"), "{stats}");
        assert!(stats.contains("faults_injected=1"), "{stats}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn exhausted_carries_hedge_attempt_ids() {
        // A fake binary server that sheds every predict slowly enough
        // for the hedge timer (100µs floor on an untrained estimator)
        // to fire first, and acks cancels: every attempt hedges, every
        // reply is `err overloaded`, and the final Exhausted error must
        // name the hedge ids alongside the primaries.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accepts");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            let mut hello = String::new();
            reader.read_line(&mut hello).expect("reads hello");
            assert_eq!(hello.trim_end(), frame::HELLO_BINARY);
            writer
                .write_all(format!("{}\n", frame::HELLO_BINARY_OK).as_bytes())
                .expect("acks binary");
            loop {
                let mut prelude = [0u8; frame::PRELUDE_LEN];
                if reader.read_exact(&mut prelude).is_err() {
                    break; // client hung up
                }
                let len = frame::decode_prelude(&prelude).expect("prelude");
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body).expect("body");
                let request = frame::decode_body(&body).expect("frame");
                let reply = match request.payload {
                    Payload::Cancel { .. } => Frame::new(
                        request.request_id,
                        Payload::LineReply("ok cancel=late".to_string()),
                    ),
                    _ => {
                        // Slow enough that the hedge timer always wins
                        // the race against this reply — comfortably
                        // past the kernel's read-timeout granularity
                        // (SO_RCVTIMEO rounds up to a scheduler tick,
                        // as much as 10ms), which is the real floor on
                        // the client's 100µs timer.
                        std::thread::sleep(Duration::from_millis(50));
                        Frame::new(
                            request.request_id,
                            Payload::Error {
                                code: frame::error_code::OVERLOADED,
                                message: "overloaded: request queue is full, retry later"
                                    .to_string(),
                            },
                        )
                    }
                };
                if writer.write_all(&frame::encode(&reply)).is_err() {
                    break;
                }
            }
        });
        let mut client = Client::with_config(
            addr,
            ClientConfig {
                hedge: true,
                hedge_min_samples: 0, // hedge from the first request
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                ..ClientConfig::default()
            },
        );
        let err = client
            .request("predict model=pair-tree SIFT@20+KNN@40")
            .expect_err("gives up");
        match err {
            ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            } => {
                assert_eq!(attempts, 2);
                assert!(last_reply.starts_with("err overloaded"), "{last_reply}");
                // Ids 1/4 are the primaries, 2/5 their hedges (3 and 6
                // were burned on the loser cancels, which are not
                // attempts). Every id that carried this request on the
                // wire is named.
                assert_eq!(request_ids, vec![1, 2, 4, 5]);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(client.hedges_fired(), 2);
        assert_eq!(client.hedge_wins(), 0, "the primary answered first");
        drop(client);
        server.join().expect("server thread");
    }
}
