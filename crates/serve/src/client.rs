//! A small line-protocol client with retry and jittered exponential
//! backoff.
//!
//! The serve front-end sheds load explicitly (`err overloaded`) and
//! isolates worker panics into typed replies (`err internal`) — both are
//! *transient*: the queue drains, the worker respawns, the model may be
//! reloaded. [`Client`] owns the retry loop a well-behaved caller should
//! run on those replies: exponential backoff with deterministic jitter
//! (a seeded xorshift, so tests replay the exact schedule), reconnecting
//! on I/O errors, and giving up with a typed [`ClientError`] once the
//! attempt budget is spent.
//!
//! Non-transient errors (`err bad request`, `err unavailable`,
//! `err deadline`, ...) are returned to the caller unchanged on the
//! first attempt — retrying a quarantined model or a malformed line
//! only adds load.
//!
//! # Protocol negotiation
//!
//! By default the client offers the binary framing on every fresh
//! connection: it sends the [`frame::HELLO_BINARY`] line and, if the
//! server acknowledges with [`frame::HELLO_BINARY_OK`], switches the
//! connection to length-prefixed frames ([`crate::frame`]) — requests
//! still go in as text lines (wrapped in a `Line` frame), but replies
//! skip a decimal round-trip: predictions come back as raw `f64` bits
//! and are re-rendered with the same shortest-roundtrip formatter the
//! server's text path uses, so the reply string is byte-identical
//! either way. A server that answers anything else (an old text-only
//! build replies `err ...`) leaves the connection on the line
//! protocol; [`ClientConfig::prefer_binary`] turns the offer off
//! entirely. Every attempt carries a client-assigned request id —
//! surfaced in [`ClientError::Exhausted`] so a hedging caller can
//! correlate giving-up with server-side traces.
//!
//! On the line protocol the client speaks single-line replies only;
//! multi-line commands (`metrics`, `trace`) need a raw socket or the
//! binary framing, whose length prefix carries them intact.

use crate::frame::{self, Frame, Payload};
use bagpred_ml::codec::fmt_f64;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Tuning knobs for [`Client`] retry behavior.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every retry after that.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Read/write timeout applied to the socket.
    pub io_timeout: Duration,
    /// Seed for the deterministic jitter; two clients with the same seed
    /// sleep the same schedule. Zero falls back to a fixed default.
    pub jitter_seed: u64,
    /// Offer the binary framing on every fresh connection (one
    /// `hello proto=binary` line). A server that does not acknowledge
    /// leaves the connection on the text protocol, so this is safe
    /// against old servers; turn it off to force text.
    pub prefer_binary: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            io_timeout: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            prefer_binary: true,
        }
    }
}

/// Why a [`Client::request`] gave up.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed and reconnecting kept failing.
    Io(std::io::Error),
    /// Every attempt drew a retryable `err` reply; the last one is
    /// included so the caller can still inspect it.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The final reply line received.
        last_reply: String,
        /// The client-assigned request id of every attempt, in order —
        /// on a binary connection these rode the wire, so a hedging
        /// caller can match this failure against server-side traces.
        request_ids: Vec<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "io error: {err}"),
            ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            } => write!(
                f,
                "gave up after {attempts} attempts (request ids {request_ids:?}); \
                 last reply: {last_reply}"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// Whether a reply line signals a transient failure worth retrying.
///
/// `err overloaded` is the queue shedding load and `err internal` is an
/// isolated worker panic; both typically clear within a backoff or two.
pub fn is_retryable(reply: &str) -> bool {
    reply.starts_with("err overloaded") || reply.starts_with("err internal")
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The backoff before retry number `attempt` (0-based): exponential
/// growth capped at `max_backoff`, with deterministic jitter drawn from
/// `rng` over the upper half of the window (`delay/2 ..= delay`), so
/// retries never synchronize into waves but also never fire early.
pub fn backoff_delay(attempt: u32, config: &ClientConfig, rng: &mut u64) -> Duration {
    let base_us = config.base_backoff.as_micros() as u64;
    let max_us = (config.max_backoff.as_micros() as u64).max(base_us);
    let exp_us = base_us
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        .min(max_us);
    let half = exp_us / 2;
    let jitter = if half == 0 {
        0
    } else {
        xorshift(rng) % (half + 1)
    };
    Duration::from_micros(half + jitter)
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this connection negotiated the binary framing.
    binary: bool,
}

/// A reconnecting line-protocol client with retry/backoff.
///
/// Construction is cheap and infallible; the TCP connection is opened
/// lazily on the first [`Client::request`] and re-opened after I/O
/// errors.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    rng: u64,
    retries: u64,
    next_request_id: u64,
}

impl Client {
    /// A client for the server at `addr` with default retry settings.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit retry settings.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        let seed = if config.jitter_seed == 0 {
            ClientConfig::default().jitter_seed
        } else {
            config.jitter_seed
        };
        Client {
            addr,
            config,
            conn: None,
            rng: seed,
            retries: 0,
            next_request_id: 1,
        }
    }

    /// Retries performed across this client's lifetime (attempts beyond
    /// the first, per request).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Whether the current connection negotiated the binary framing:
    /// `None` before the first connection is opened.
    pub fn is_binary(&self) -> Option<bool> {
        self.conn.as_ref().map(|conn| conn.binary)
    }

    fn connect(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            let writer = stream.try_clone()?;
            let mut conn = Conn {
                reader: BufReader::new(stream),
                writer,
                binary: false,
            };
            if self.config.prefer_binary {
                // Feature negotiation in the text dialect both sides
                // are guaranteed to share. An old server answers
                // `err ...`; that reply is consumed here, so the
                // connection is clean for the first request either way.
                conn.writer
                    .write_all(format!("{}\n", frame::HELLO_BINARY).as_bytes())?;
                conn.writer.flush()?;
                let mut ack = String::new();
                let n = conn.reader.read_line(&mut ack)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection during negotiation",
                    ));
                }
                conn.binary = ack.trim_end() == frame::HELLO_BINARY_OK;
            }
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection just installed"))
    }

    fn attempt(&mut self, line: &str, request_id: u64) -> std::io::Result<String> {
        let conn = self.connect()?;
        if conn.binary {
            return Self::attempt_binary(conn, line, request_id);
        }
        // One write syscall for line + newline: the writer is a raw
        // `TcpStream`, and two small writes become two TCP segments —
        // Nagle then parks the second behind the first's (possibly
        // delayed) ACK, costing tens of milliseconds per request.
        conn.writer.write_all(format!("{line}\n").as_bytes())?;
        conn.writer.flush()?;
        let mut reply = String::new();
        let n = conn.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// One request over the binary framing: the line rides in a `Line`
    /// frame tagged with `request_id`, and the reply frame is rendered
    /// back to the exact string the text protocol would have sent.
    fn attempt_binary(conn: &mut Conn, line: &str, request_id: u64) -> std::io::Result<String> {
        let request = Frame::new(request_id, Payload::Line(line.to_string()));
        conn.writer.write_all(&frame::encode(&request))?;
        conn.writer.flush()?;
        loop {
            let reply = Self::read_frame(&mut conn.reader)?;
            // One request in flight per `Client`, but replies to
            // earlier attempts may straggle after an I/O-timeout retry
            // on the same connection; skip any id that is not ours.
            if reply.request_id == request_id {
                return Ok(render_reply(reply.payload));
            }
        }
    }

    fn read_frame(reader: &mut BufReader<TcpStream>) -> std::io::Result<Frame> {
        let mut prelude = [0u8; frame::PRELUDE_LEN];
        reader.read_exact(&mut prelude)?;
        let len = frame::decode_prelude(&prelude)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        frame::decode_body(&body)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))
    }

    /// Send one request line and return the reply line, retrying
    /// transient failures (see [`is_retryable`]) and I/O errors with
    /// jittered exponential backoff. Non-transient `err` replies are
    /// returned as `Ok` — the protocol answered; deciding what to do
    /// with a `bad request` or `unavailable` is the caller's business.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let attempts = self.config.max_attempts.max(1);
        let mut last_io: Option<std::io::Error> = None;
        let mut last_reply: Option<String> = None;
        let mut request_ids = Vec::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                let config = self.config.clone();
                std::thread::sleep(backoff_delay(attempt - 1, &config, &mut self.rng));
            }
            // Every attempt gets a fresh id — a retry is a new request
            // on the wire, so a hedging caller can tell them apart.
            let request_id = self.next_request_id;
            self.next_request_id += 1;
            request_ids.push(request_id);
            match self.attempt(line, request_id) {
                Ok(reply) if is_retryable(&reply) => last_reply = Some(reply),
                Ok(reply) => return Ok(reply),
                Err(err) => {
                    // A dead socket cannot be reused; reconnect on retry.
                    self.conn = None;
                    last_io = Some(err);
                }
            }
        }
        match (last_reply, last_io) {
            (Some(last_reply), _) => Err(ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            }),
            (None, Some(err)) => Err(ClientError::Io(err)),
            (None, None) => unreachable!("at least one attempt always runs"),
        }
    }

    /// The id the most recent attempt rode the wire with, or `None`
    /// before the first request. This is the id to hand back to
    /// [`report_outcome`](Self::report_outcome) after acting on a
    /// prediction: the server joins the outcome to the prediction it
    /// recorded under that id.
    pub fn last_request_id(&self) -> Option<u64> {
        (self.next_request_id > 1).then(|| self.next_request_id - 1)
    }

    /// Closes the loop on an earlier prediction: reports the runtime
    /// actually observed after acting on it, named by the request id the
    /// prediction was served under (see
    /// [`last_request_id`](Self::last_request_id)). On a binary
    /// connection the report rides a compact `Outcome` frame whose own
    /// request id *is* the join key; on a text connection it falls back
    /// to the `observe` line (where joining requires the server to have
    /// seen the id on the wire, so text-only reports come back
    /// `orphaned`). Returns the reply line: `ok outcome=matched` or
    /// `ok outcome=orphaned`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket fails. The binary path is a
    /// single attempt — retrying an outcome report is pointless, since
    /// the first delivery already consumed (or orphaned) the join key;
    /// the text fallback goes through [`request`](Self::request) and
    /// inherits its retry loop, which is harmless for the same reason:
    /// a replayed report is counted as orphaned, never double-joined.
    pub fn report_outcome(&mut self, id: u64, actual_us: u64) -> Result<String, ClientError> {
        // The text rendering is also the binary fallback: on a binary
        // connection `attempt` wraps it in a Line frame tagged with a
        // fresh id, and the engine reads the join key out of the parsed
        // `observe` verb, so both framings reach the same code path.
        if self.conn.as_ref().is_some_and(|conn| conn.binary) {
            return self.report_outcome_binary(id, actual_us);
        }
        self.request(&format!("observe id={id} actual_us={actual_us}"))
    }

    /// The binary-framed outcome report: 8 payload bytes, joined by the
    /// frame's own request id.
    fn report_outcome_binary(&mut self, id: u64, actual_us: u64) -> Result<String, ClientError> {
        let conn = match self.connect() {
            Ok(conn) => conn,
            Err(err) => return Err(ClientError::Io(err)),
        };
        let request = Frame::new(id, Payload::Outcome { actual_us });
        let send = (|| -> std::io::Result<String> {
            conn.writer.write_all(&frame::encode(&request))?;
            conn.writer.flush()?;
            loop {
                let reply = Self::read_frame(&mut conn.reader)?;
                if reply.request_id == id {
                    return Ok(render_reply(reply.payload));
                }
            }
        })();
        send.map_err(|err| {
            // A dead socket cannot be reused; the next request reconnects.
            self.conn = None;
            ClientError::Io(err)
        })
    }
}

/// Renders a binary reply frame to the exact string the text protocol
/// would have written for the same outcome: predictions re-render their
/// raw `f64` bits with the server's shortest-roundtrip formatter,
/// framed text replies pass through verbatim, and errors regain their
/// `err ` prefix.
fn render_reply(payload: Payload) -> String {
    match payload {
        Payload::Prediction { model, predicted_s } => {
            format!("ok model={model} predicted_s={}", fmt_f64(predicted_s))
        }
        Payload::LineReply(text) => text,
        Payload::Error { message, .. } => format!("err {message}"),
        // Request opcodes are never valid replies; surface them as a
        // reply the retry classifier treats as non-transient.
        Payload::Predict { .. } | Payload::Line(_) | Payload::Outcome { .. } => {
            "err bad request: request opcode in a reply frame".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_caps() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 42,
            ..ClientConfig::default()
        };
        let mut rng_a = config.jitter_seed;
        let mut rng_b = config.jitter_seed;
        let schedule_a: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_a))
            .collect();
        let schedule_b: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_b))
            .collect();
        // Same seed, same schedule — tests can replay it exactly.
        assert_eq!(schedule_a, schedule_b);
        for (i, delay) in schedule_a.iter().enumerate() {
            let exp =
                Duration::from_millis(10u64.saturating_mul(1 << i)).min(Duration::from_millis(100));
            // Jitter stays within [exp/2, exp]: never early, never over.
            assert!(*delay >= exp / 2, "attempt {i}: {delay:?} < {:?}", exp / 2);
            assert!(*delay <= exp, "attempt {i}: {delay:?} > {exp:?}");
        }
        // The cap binds: late attempts never exceed max_backoff.
        assert!(schedule_a[7] <= Duration::from_millis(100));
        // Different seeds jitter differently (with overwhelming odds).
        let mut rng_c = 7;
        let schedule_c: Vec<Duration> = (0..8)
            .map(|i| backoff_delay(i, &config, &mut rng_c))
            .collect();
        assert_ne!(schedule_a, schedule_c);
    }

    #[test]
    fn retryable_classification_matches_the_wire_prefixes() {
        assert!(is_retryable(
            "err overloaded: request queue is full, retry later"
        ));
        assert!(is_retryable("err internal: model `pair-tree` panicked"));
        assert!(!is_retryable("ok model=pair-tree predicted_s=1.5"));
        assert!(!is_retryable("err bad request: empty request"));
        assert!(!is_retryable(
            "err unavailable: model `pair-tree` is quarantined"
        ));
        assert!(!is_retryable("err deadline: request expired"));
        assert!(!is_retryable("err unknown model `nope`"));
    }

    #[test]
    fn exhausted_requests_surface_the_last_reply() {
        // A fake server that always sheds: every attempt reads
        // `err overloaded`, so the client retries then gives up typed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut served = 0u32;
            // One connection; the client keeps it open across retries.
            let (stream, _) = listener.accept().expect("accepts");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            let mut line = String::new();
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                writer
                    .write_all(b"err overloaded: request queue is full, retry later\n")
                    .expect("writes");
                served += 1;
                line.clear();
            }
            served
        });
        let mut client = Client::with_config(
            addr,
            ClientConfig {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                prefer_binary: false, // pure text path
                ..ClientConfig::default()
            },
        );
        let err = client
            .request("predict SIFT@20+KNN@40")
            .expect_err("gives up");
        match err {
            ClientError::Exhausted {
                attempts,
                last_reply,
                request_ids,
            } => {
                assert_eq!(attempts, 3);
                assert!(last_reply.starts_with("err overloaded"), "{last_reply}");
                // One id per attempt, in order — the caller can match
                // them against server-side traces when hedging.
                assert_eq!(request_ids, vec![1, 2, 3]);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(client.retries(), 2);
        assert_eq!(client.is_binary(), Some(false));
        drop(client);
        assert_eq!(server.join().expect("server thread"), 3);
    }

    #[test]
    fn client_falls_back_to_text_when_the_server_declines_binary() {
        // A text-only server: it answers the hello line with an error
        // (as any build predating the binary framing would) and then
        // echoes canned replies. The client must stay on text and the
        // request must still succeed.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accepts");
            let mut reader = BufReader::new(stream.try_clone().expect("clones"));
            let mut writer = stream;
            let mut line = String::new();
            reader.read_line(&mut line).expect("reads hello");
            assert_eq!(line.trim_end(), frame::HELLO_BINARY);
            writer
                .write_all(b"err bad request: unknown verb `hello`\n")
                .expect("declines");
            line.clear();
            reader.read_line(&mut line).expect("reads request");
            writer
                .write_all(b"ok model=pair-tree predicted_s=1.5\n")
                .expect("answers");
            line.trim_end().to_string()
        });
        let mut client = Client::new(addr);
        let reply = client.request("predict SIFT@20+KNN@40").expect("succeeds");
        assert_eq!(reply, "ok model=pair-tree predicted_s=1.5");
        assert_eq!(client.is_binary(), Some(false));
        assert_eq!(
            server.join().expect("server thread"),
            "predict SIFT@20+KNN@40",
            "the request must arrive as a plain text line"
        );
    }

    #[test]
    fn client_negotiates_binary_and_renders_identical_reply_lines() {
        use crate::engine::{PredictionService, ServiceConfig};
        use crate::server::Server;
        use bagpred_core::Platforms;
        use std::sync::Arc;

        let service = PredictionService::start(
            crate::testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        let mut text = Client::with_config(
            server.local_addr(),
            ClientConfig {
                prefer_binary: false,
                ..ClientConfig::default()
            },
        );
        let mut binary = Client::new(server.local_addr());

        for line in [
            "predict SIFT@20+KNN@40",
            "predict model=nbag-tree HOG@20+FAST@80+ORB@40",
            "models",
            "health",
            "bogus nonsense", // error replies must match too
        ] {
            let from_text = text.request(line).expect("text reply");
            let from_binary = binary.request(line).expect("binary reply");
            assert_eq!(
                from_binary, from_text,
                "binary and text replies must be byte-identical for `{line}`"
            );
        }
        assert_eq!(text.is_binary(), Some(false));
        assert_eq!(binary.is_binary(), Some(true));
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn report_outcome_closes_the_loop_on_binary_and_orphans_on_text() {
        use crate::engine::{PredictionService, ServiceConfig};
        use crate::server::Server;
        use bagpred_core::Platforms;
        use std::sync::Arc;

        let service = PredictionService::start(
            crate::testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        // Binary connection: the predict rode the wire with a client-
        // assigned id, so the outcome report joins it — exactly once.
        let mut binary = Client::new(server.local_addr());
        assert_eq!(binary.last_request_id(), None, "no request yet");
        let reply = binary.request("predict SIFT@20+KNN@40").expect("predicts");
        let predicted_s: f64 = reply
            .rsplit_once("predicted_s=")
            .expect("has field")
            .1
            .parse()
            .expect("parses");
        let actual_us = (predicted_s * 1e6).round() as u64;
        let id = binary.last_request_id().expect("a request was made");
        assert_eq!(
            binary.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=matched"
        );
        assert_eq!(
            binary.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=orphaned",
            "the join key is consumed by the first report"
        );

        // Text connection: predictions are never recorded (no wire id),
        // so the loop cannot close — the report is counted as orphaned.
        let mut text = Client::with_config(
            server.local_addr(),
            ClientConfig {
                prefer_binary: false,
                ..ClientConfig::default()
            },
        );
        text.request("predict SIFT@20+KNN@40").expect("predicts");
        let id = text.last_request_id().expect("a request was made");
        assert_eq!(
            text.report_outcome(id, actual_us).expect("reports"),
            "ok outcome=orphaned"
        );

        // The server-side accounting saw exactly one join.
        assert_eq!(service.outcomes().matched(), 1);
        assert_eq!(service.outcomes().orphaned(), 2);
        server.shutdown();
        service.shutdown();
    }
}
