//! Admission control: greedy packing of applications onto simulated GPUs
//! under a predicted-latency budget.
//!
//! This is the paper's motivating use case turned into a serving
//! primitive: given a set of applications and `k` GPUs, decide which
//! apps may co-run where so that every GPU's *predicted*
//! multi-application time stays within a budget — without ever running
//! the expensive co-run to find out.
//!
//! The policy is first-fit-decreasing: apps are ordered by predicted
//! solo GPU time (longest first, the classic bin-packing heuristic) and
//! each is placed on the GPU that minimizes the resulting predicted bag
//! time while respecting the budget and the model's bag capacity (2 for
//! the paper's pair model, [`MAX_BAG`] for the n-bag extension). Apps
//! that fit nowhere are rejected, not queued — the caller decides what
//! to do with them.

use crate::cache::FeatureCache;
use crate::error::ServeError;
use crate::snapshot::ServableModel;
use bagpred_core::nbag::{NBag, MAX_BAG};
use bagpred_core::{Bag, Platforms};
use bagpred_workloads::Workload;

/// One GPU's assigned apps and the model's predicted completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuAssignment {
    /// Apps co-running on this GPU (possibly empty).
    pub apps: Vec<Workload>,
    /// Predicted GPU time for this assignment, seconds (0 when empty).
    pub predicted_s: f64,
}

/// The admission controller's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-GPU assignments, length `k`.
    pub gpus: Vec<GpuAssignment>,
    /// Apps that could not be placed within the budget.
    pub rejected: Vec<Workload>,
}

impl Placement {
    /// Number of apps that were admitted.
    pub fn admitted(&self) -> usize {
        self.gpus.iter().map(|g| g.apps.len()).sum()
    }
}

/// How the admission controller decides whether an app may join a co-run.
///
/// Both policies share the same first-fit-decreasing skeleton; they differ
/// only in which candidate co-runs are acceptable:
///
/// * [`Ffd`](AdmissionPolicy::Ffd) — today's default: any candidate whose
///   predicted time fits the budget.
/// * [`SoloFallback`](AdmissionPolicy::SoloFallback) — promoted from the
///   `edge_scheduler` example: additionally require that the co-run is
///   predicted *faster than serializing its members* (predicted bag time
///   < Σ solo times). With MPS's destructive interference this frequently
///   refuses pairings that FFD would happily admit; rejected apps are
///   returned to the caller, who may queue them for a solo slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// First-fit-decreasing under the latency budget only.
    #[default]
    Ffd,
    /// FFD, but co-run only when predicted faster than serialization.
    SoloFallback,
}

impl AdmissionPolicy {
    /// Stable lowercase name, used by CLIs and reports.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Ffd => "ffd",
            AdmissionPolicy::SoloFallback => "solo",
        }
    }
}

/// Predicted GPU time for a candidate co-run set (1..=capacity apps).
///
/// Public so schedulers built on top of admission (the fleet simulator,
/// the `edge_scheduler` example) can price candidate co-runs without
/// duplicating the pair/n-bag model dispatch.
pub fn predict_corun(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    apps: &[Workload],
) -> Result<f64, ServeError> {
    match apps.len() {
        0 => Ok(0.0),
        1 => Ok(cache.app_features(apps[0], platforms).gpu_time_s),
        n => match model {
            ServableModel::Pair(p) if n == 2 => {
                let record = cache.pair_measurement(Bag::pair(apps[0], apps[1]), platforms);
                Ok(p.predict(&record))
            }
            ServableModel::Pair(_) => Err(ServeError::Unsupported(format!(
                "pair model cannot predict a {n}-app co-run"
            ))),
            ServableModel::NBag(p) => {
                let bag = NBag::new(apps.to_vec());
                let record = cache.nbag_measurement(&bag, platforms);
                Ok(p.predict(&record))
            }
        },
    }
}

/// Greedily packs `apps` onto `gpus` simulated GPUs so every GPU's
/// predicted time stays within `budget_s`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for a zero GPU count or non-positive /
/// non-finite budget; prediction errors propagate.
pub fn admit(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    gpus: usize,
    budget_s: f64,
    apps: &[Workload],
) -> Result<Placement, ServeError> {
    place(
        model,
        cache,
        platforms,
        gpus,
        budget_s,
        apps,
        AdmissionPolicy::Ffd,
    )
}

/// [`admit`] generalized over an [`AdmissionPolicy`].
///
/// Apps are placed in first-fit-decreasing order (longest predicted solo
/// GPU time first, canonical workload order as tie-break) onto the GPU
/// that minimizes the resulting predicted bag time among the candidates
/// the policy accepts. Placement is fully deterministic for a fixed
/// input.
///
/// # Errors
///
/// Same contract as [`admit`].
#[allow(clippy::too_many_arguments)]
pub fn place(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    gpus: usize,
    budget_s: f64,
    apps: &[Workload],
    policy: AdmissionPolicy,
) -> Result<Placement, ServeError> {
    if gpus == 0 {
        return Err(ServeError::BadRequest(
            "need at least one GPU (k>=1)".into(),
        ));
    }
    if !budget_s.is_finite() || budget_s <= 0.0 {
        return Err(ServeError::BadRequest(
            "budget must be a positive number of seconds".into(),
        ));
    }
    let capacity = match model {
        ServableModel::Pair(_) => 2,
        ServableModel::NBag(_) => MAX_BAG,
    };

    // First-fit-decreasing order: longest solo GPU time first, with the
    // canonical workload order as a deterministic tie-break.
    let mut ordered: Vec<(Workload, f64)> = apps
        .iter()
        .map(|&w| (w, cache.app_features(w, platforms).gpu_time_s))
        .collect();
    ordered.sort_by(|(wa, ta), (wb, tb)| {
        tb.partial_cmp(ta)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                (wa.benchmark().name(), wa.batch_size())
                    .cmp(&(wb.benchmark().name(), wb.batch_size()))
            })
    });

    let mut assignments: Vec<GpuAssignment> = (0..gpus)
        .map(|_| GpuAssignment {
            apps: Vec::new(),
            predicted_s: 0.0,
        })
        .collect();
    // Per-GPU sum of members' solo times, maintained for SoloFallback's
    // "is co-running faster than serializing?" test.
    let mut solo_sums = vec![0.0f64; gpus];
    let mut rejected = Vec::new();

    for (workload, solo) in ordered {
        let mut best: Option<(usize, f64)> = None;
        for (idx, gpu) in assignments.iter().enumerate() {
            if gpu.apps.len() >= capacity {
                continue;
            }
            let mut candidate = gpu.apps.clone();
            candidate.push(workload);
            let predicted = predict_corun(model, cache, platforms, &candidate)?;
            if predicted > budget_s {
                continue;
            }
            let acceptable = match policy {
                AdmissionPolicy::Ffd => true,
                // Joining an empty GPU is solo execution — always fine.
                // Joining an occupied one must beat back-to-back runs.
                AdmissionPolicy::SoloFallback => {
                    gpu.apps.is_empty() || predicted < solo_sums[idx] + solo
                }
            };
            if acceptable && best.is_none_or(|(_, t)| predicted < t) {
                best = Some((idx, predicted));
            }
        }
        match best {
            Some((idx, predicted)) => {
                assignments[idx].apps.push(workload);
                assignments[idx].predicted_s = predicted;
                solo_sums[idx] += solo;
            }
            None => rejected.push(workload),
        }
    }

    Ok(Placement {
        gpus: assignments,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{NBAG_MODEL, PAIR_MODEL};
    use crate::testutil;
    use bagpred_workloads::Benchmark;

    fn apps4() -> Vec<Workload> {
        vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
            Workload::new(Benchmark::Hog, 20),
        ]
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        assert!(matches!(
            admit(&model, &cache, &platforms, 0, 1.0, &apps4()),
            Err(ServeError::BadRequest(_))
        ));
        for bad_budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                admit(&model, &cache, &platforms, 2, bad_budget, &apps4()),
                Err(ServeError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn generous_budget_admits_everything_within_capacity() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 2, 1e9, &apps4()).expect("admits");
        assert_eq!(placement.admitted(), 4);
        assert!(placement.rejected.is_empty());
        for gpu in &placement.gpus {
            assert!(gpu.apps.len() <= 2, "pair model caps co-runs at 2");
            assert!(gpu.predicted_s.is_finite());
        }
    }

    #[test]
    fn pair_placement_predictions_match_direct_predictor() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 2, 1e9, &apps4()).expect("admits");
        let ServableModel::Pair(predictor) = &*model else {
            panic!()
        };
        for gpu in &placement.gpus {
            if gpu.apps.len() == 2 {
                let record =
                    cache.pair_measurement(Bag::pair(gpu.apps[0], gpu.apps[1]), &platforms);
                assert_eq!(
                    gpu.predicted_s.to_bits(),
                    predictor.predict(&record).to_bits()
                );
            }
        }
    }

    #[test]
    fn tiny_budget_rejects_everything() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 4, 1e-12, &apps4()).expect("runs");
        assert_eq!(placement.admitted(), 0);
        assert_eq!(placement.rejected.len(), 4);
    }

    #[test]
    fn nbag_model_packs_up_to_max_bag_on_one_gpu() {
        let registry = testutil::registry();
        let model = registry.get(NBAG_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 1, 1e9, &apps4()).expect("admits");
        assert_eq!(placement.admitted(), 4, "MAX_BAG={MAX_BAG} fits all four");
        assert_eq!(placement.gpus[0].apps.len(), 4);
    }

    #[test]
    fn admit_is_place_with_ffd_policy() {
        let registry = testutil::registry();
        let model = registry.get(NBAG_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let via_admit = admit(&model, &cache, &platforms, 3, 0.5, &apps4()).expect("runs");
        let via_place = place(
            &model,
            &cache,
            &platforms,
            3,
            0.5,
            &apps4(),
            AdmissionPolicy::Ffd,
        )
        .expect("runs");
        assert_eq!(via_admit, via_place);
    }

    #[test]
    fn solo_fallback_corun_beats_serialization_on_every_gpu() {
        let registry = testutil::registry();
        let model = registry.get(NBAG_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = place(
            &model,
            &cache,
            &platforms,
            2,
            1e9,
            &apps4(),
            AdmissionPolicy::SoloFallback,
        )
        .expect("runs");
        assert_eq!(placement.admitted() + placement.rejected.len(), 4);
        for gpu in &placement.gpus {
            if gpu.apps.len() >= 2 {
                let serialize: f64 = gpu
                    .apps
                    .iter()
                    .map(|&w| cache.app_features(w, &platforms).gpu_time_s)
                    .sum();
                assert!(
                    gpu.predicted_s < serialize,
                    "co-run {:?} predicted {} not faster than serialization {}",
                    gpu.apps,
                    gpu.predicted_s,
                    serialize
                );
            }
        }
    }

    #[test]
    fn solo_fallback_with_enough_gpus_prefers_solo_slots() {
        let registry = testutil::registry();
        let model = registry.get(NBAG_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        // One GPU per app: solo slots are always available, so nothing is
        // ever rejected even if every co-run is destructive.
        let placement = place(
            &model,
            &cache,
            &platforms,
            4,
            1e9,
            &apps4(),
            AdmissionPolicy::SoloFallback,
        )
        .expect("runs");
        assert_eq!(placement.admitted(), 4);
        assert!(placement.rejected.is_empty());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(AdmissionPolicy::Ffd.name(), "ffd");
        assert_eq!(AdmissionPolicy::SoloFallback.name(), "solo");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Ffd);
    }

    #[test]
    fn budget_is_respected_by_every_assignment() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        // Solo GPU times are fractions of a second; a mid-range budget
        // forces a mix of admissions and rejections.
        let budget = 0.5;
        let placement = admit(&model, &cache, &platforms, 2, budget, &apps4()).expect("runs");
        for gpu in &placement.gpus {
            assert!(
                gpu.predicted_s <= budget,
                "assignment {:?} exceeds budget",
                gpu
            );
        }
        assert_eq!(placement.admitted() + placement.rejected.len(), 4);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::bootstrap::NBAG_MODEL;
    use crate::testutil;
    use bagpred_workloads::Benchmark;
    use proptest::prelude::*;

    /// The draw pool: a spread of benchmarks and batch sizes.
    fn pool() -> Vec<Workload> {
        vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
            Workload::new(Benchmark::Hog, 20),
            Workload::new(Benchmark::Fast, 80),
            Workload::new(Benchmark::Svm, 20),
        ]
    }

    /// One feature cache shared across all generated cases so each pool
    /// workload is profiled at most once for the whole property run.
    fn shared_cache() -> &'static FeatureCache {
        static CACHE: std::sync::OnceLock<FeatureCache> = std::sync::OnceLock::new();
        CACHE.get_or_init(FeatureCache::new)
    }

    fn sort_key(w: &Workload) -> (&'static str, usize) {
        (w.benchmark().name(), w.batch_size())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// `place` invariants for both policies: capacity and budget are
        /// never exceeded, every input app is either admitted or rejected
        /// (multiset conservation), and output is deterministic for a
        /// fixed input order.
        #[test]
        fn place_invariants_hold(
            picks in proptest::collection::vec(0usize..6, 1..9),
            gpus in 1usize..4,
            budget_tenths in 1u64..40,
        ) {
            let registry = testutil::registry();
            let model = registry.get(NBAG_MODEL).expect("registered");
            let cache = shared_cache();
            let platforms = Platforms::paper();
            let pool = pool();
            let apps: Vec<Workload> = picks.iter().map(|&i| pool[i]).collect();
            let budget_s = budget_tenths as f64 * 0.1;

            for policy in [AdmissionPolicy::Ffd, AdmissionPolicy::SoloFallback] {
                let a = place(&model, cache, &platforms, gpus, budget_s, &apps, policy)
                    .expect("place runs");
                let b = place(&model, cache, &platforms, gpus, budget_s, &apps, policy)
                    .expect("place runs");
                prop_assert_eq!(&a, &b);

                prop_assert_eq!(a.gpus.len(), gpus);
                for gpu in &a.gpus {
                    prop_assert!(gpu.apps.len() <= MAX_BAG, "capacity exceeded");
                    if !gpu.apps.is_empty() {
                        prop_assert!(
                            gpu.predicted_s <= budget_s,
                            "budget exceeded: {} > {}", gpu.predicted_s, budget_s
                        );
                    }
                }
                prop_assert_eq!(a.admitted() + a.rejected.len(), apps.len());

                let mut seen: Vec<Workload> = a
                    .gpus
                    .iter()
                    .flat_map(|g| g.apps.iter().copied())
                    .chain(a.rejected.iter().copied())
                    .collect();
                let mut input = apps.clone();
                seen.sort_by(|x, y| sort_key(x).cmp(&sort_key(y)));
                input.sort_by(|x, y| sort_key(x).cmp(&sort_key(y)));
                prop_assert_eq!(seen, input);
            }
        }
    }
}
