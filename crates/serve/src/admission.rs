//! Admission control: greedy packing of applications onto simulated GPUs
//! under a predicted-latency budget.
//!
//! This is the paper's motivating use case turned into a serving
//! primitive: given a set of applications and `k` GPUs, decide which
//! apps may co-run where so that every GPU's *predicted*
//! multi-application time stays within a budget — without ever running
//! the expensive co-run to find out.
//!
//! The policy is first-fit-decreasing: apps are ordered by predicted
//! solo GPU time (longest first, the classic bin-packing heuristic) and
//! each is placed on the GPU that minimizes the resulting predicted bag
//! time while respecting the budget and the model's bag capacity (2 for
//! the paper's pair model, [`MAX_BAG`] for the n-bag extension). Apps
//! that fit nowhere are rejected, not queued — the caller decides what
//! to do with them.

use crate::cache::FeatureCache;
use crate::error::ServeError;
use crate::snapshot::ServableModel;
use bagpred_core::nbag::{NBag, MAX_BAG};
use bagpred_core::{Bag, Platforms};
use bagpred_workloads::Workload;

/// One GPU's assigned apps and the model's predicted completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuAssignment {
    /// Apps co-running on this GPU (possibly empty).
    pub apps: Vec<Workload>,
    /// Predicted GPU time for this assignment, seconds (0 when empty).
    pub predicted_s: f64,
}

/// The admission controller's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-GPU assignments, length `k`.
    pub gpus: Vec<GpuAssignment>,
    /// Apps that could not be placed within the budget.
    pub rejected: Vec<Workload>,
}

impl Placement {
    /// Number of apps that were admitted.
    pub fn admitted(&self) -> usize {
        self.gpus.iter().map(|g| g.apps.len()).sum()
    }
}

/// Predicted GPU time for a candidate co-run set (1..=capacity apps).
fn predict_set(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    apps: &[Workload],
) -> Result<f64, ServeError> {
    match apps.len() {
        0 => Ok(0.0),
        1 => Ok(cache.app_features(apps[0], platforms).gpu_time_s),
        n => match model {
            ServableModel::Pair(p) if n == 2 => {
                let record = cache.pair_measurement(Bag::pair(apps[0], apps[1]), platforms);
                Ok(p.predict(&record))
            }
            ServableModel::Pair(_) => Err(ServeError::Unsupported(format!(
                "pair model cannot predict a {n}-app co-run"
            ))),
            ServableModel::NBag(p) => {
                let bag = NBag::new(apps.to_vec());
                let record = cache.nbag_measurement(&bag, platforms);
                Ok(p.predict(&record))
            }
        },
    }
}

/// Greedily packs `apps` onto `gpus` simulated GPUs so every GPU's
/// predicted time stays within `budget_s`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for a zero GPU count or non-positive /
/// non-finite budget; prediction errors propagate.
pub fn admit(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    gpus: usize,
    budget_s: f64,
    apps: &[Workload],
) -> Result<Placement, ServeError> {
    if gpus == 0 {
        return Err(ServeError::BadRequest(
            "need at least one GPU (k>=1)".into(),
        ));
    }
    if !budget_s.is_finite() || budget_s <= 0.0 {
        return Err(ServeError::BadRequest(
            "budget must be a positive number of seconds".into(),
        ));
    }
    let capacity = match model {
        ServableModel::Pair(_) => 2,
        ServableModel::NBag(_) => MAX_BAG,
    };

    // First-fit-decreasing order: longest solo GPU time first, with the
    // canonical workload order as a deterministic tie-break.
    let mut ordered: Vec<(Workload, f64)> = apps
        .iter()
        .map(|&w| (w, cache.app_features(w, platforms).gpu_time_s))
        .collect();
    ordered.sort_by(|(wa, ta), (wb, tb)| {
        tb.partial_cmp(ta)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                (wa.benchmark().name(), wa.batch_size())
                    .cmp(&(wb.benchmark().name(), wb.batch_size()))
            })
    });

    let mut assignments: Vec<GpuAssignment> = (0..gpus)
        .map(|_| GpuAssignment {
            apps: Vec::new(),
            predicted_s: 0.0,
        })
        .collect();
    let mut rejected = Vec::new();

    for (workload, _solo) in ordered {
        let mut best: Option<(usize, f64)> = None;
        for (idx, gpu) in assignments.iter().enumerate() {
            if gpu.apps.len() >= capacity {
                continue;
            }
            let mut candidate = gpu.apps.clone();
            candidate.push(workload);
            let predicted = predict_set(model, cache, platforms, &candidate)?;
            if predicted <= budget_s && best.is_none_or(|(_, t)| predicted < t) {
                best = Some((idx, predicted));
            }
        }
        match best {
            Some((idx, predicted)) => {
                assignments[idx].apps.push(workload);
                assignments[idx].predicted_s = predicted;
            }
            None => rejected.push(workload),
        }
    }

    Ok(Placement {
        gpus: assignments,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{NBAG_MODEL, PAIR_MODEL};
    use crate::testutil;
    use bagpred_workloads::Benchmark;

    fn apps4() -> Vec<Workload> {
        vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
            Workload::new(Benchmark::Hog, 20),
        ]
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        assert!(matches!(
            admit(&model, &cache, &platforms, 0, 1.0, &apps4()),
            Err(ServeError::BadRequest(_))
        ));
        for bad_budget in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                admit(&model, &cache, &platforms, 2, bad_budget, &apps4()),
                Err(ServeError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn generous_budget_admits_everything_within_capacity() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 2, 1e9, &apps4()).expect("admits");
        assert_eq!(placement.admitted(), 4);
        assert!(placement.rejected.is_empty());
        for gpu in &placement.gpus {
            assert!(gpu.apps.len() <= 2, "pair model caps co-runs at 2");
            assert!(gpu.predicted_s.is_finite());
        }
    }

    #[test]
    fn pair_placement_predictions_match_direct_predictor() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 2, 1e9, &apps4()).expect("admits");
        let ServableModel::Pair(predictor) = &*model else {
            panic!()
        };
        for gpu in &placement.gpus {
            if gpu.apps.len() == 2 {
                let record =
                    cache.pair_measurement(Bag::pair(gpu.apps[0], gpu.apps[1]), &platforms);
                assert_eq!(
                    gpu.predicted_s.to_bits(),
                    predictor.predict(&record).to_bits()
                );
            }
        }
    }

    #[test]
    fn tiny_budget_rejects_everything() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 4, 1e-12, &apps4()).expect("runs");
        assert_eq!(placement.admitted(), 0);
        assert_eq!(placement.rejected.len(), 4);
    }

    #[test]
    fn nbag_model_packs_up_to_max_bag_on_one_gpu() {
        let registry = testutil::registry();
        let model = registry.get(NBAG_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        let placement = admit(&model, &cache, &platforms, 1, 1e9, &apps4()).expect("admits");
        assert_eq!(placement.admitted(), 4, "MAX_BAG={MAX_BAG} fits all four");
        assert_eq!(placement.gpus[0].apps.len(), 4);
    }

    #[test]
    fn budget_is_respected_by_every_assignment() {
        let registry = testutil::registry();
        let model = registry.get(PAIR_MODEL).expect("registered");
        let cache = FeatureCache::new();
        let platforms = Platforms::paper();
        // Solo GPU times are fractions of a second; a mid-range budget
        // forces a mix of admissions and rejections.
        let budget = 0.5;
        let placement = admit(&model, &cache, &platforms, 2, budget, &apps4()).expect("runs");
        for gpu in &placement.gpus {
            assert!(
                gpu.predicted_s <= budget,
                "assignment {:?} exceeds budget",
                gpu
            );
        }
        assert_eq!(placement.admitted() + placement.rejected.len(), 4);
    }
}
