//! Prometheus-text rendering of the whole service state (the `metrics`
//! command and the optional `--metrics-addr` HTTP listener).
//!
//! Every series carries the `bagpred_` prefix. Global counters and
//! histograms come first, then per-map cache counters labelled
//! `{map="apps|fairness|nbags"}`, per-stage histograms labelled
//! `{stage="..."}`, and per-model series labelled `{model="..."}`.
//! Histograms are exposed in classic cumulative `_bucket{le="..."}` form
//! with the log2 bucket bounds of [`bagpred_obs::LogHistogram`].

use crate::engine::Inner;
use bagpred_obs::Exposition;

/// Render the full exposition document for a running service.
pub(crate) fn render(inner: &Inner) -> String {
    let mut expo = Exposition::new();
    let metrics = &inner.metrics;
    let snap = metrics.snapshot();

    expo.header(
        "bagpred_requests_received_total",
        "counter",
        "Requests accepted into the queue.",
    );
    expo.sample("bagpred_requests_received_total", &[], snap.received as f64);
    expo.header(
        "bagpred_requests_succeeded_total",
        "counter",
        "Requests completed with an ok reply.",
    );
    expo.sample(
        "bagpred_requests_succeeded_total",
        &[],
        snap.succeeded as f64,
    );
    expo.header(
        "bagpred_requests_failed_total",
        "counter",
        "Requests completed with an err reply.",
    );
    expo.sample("bagpred_requests_failed_total", &[], snap.failed as f64);
    expo.header(
        "bagpred_requests_shed_total",
        "counter",
        "Requests rejected because the queue was full.",
    );
    expo.sample("bagpred_requests_shed_total", &[], snap.shed as f64);

    expo.header(
        "bagpred_queue_depth",
        "gauge",
        "Requests queued but not yet picked up.",
    );
    expo.sample("bagpred_queue_depth", &[], inner.queue_depth() as f64);
    expo.header("bagpred_workers", "gauge", "Worker threads per shard.");
    expo.sample("bagpred_workers", &[], inner.config.workers as f64);
    expo.header("bagpred_models", "gauge", "Registered models.");
    expo.sample("bagpred_models", &[], inner.registry.len() as f64);

    expo.header(
        "bagpred_request_latency_us",
        "histogram",
        "End-to-end request latency, microseconds.",
    );
    expo.histogram(
        "bagpred_request_latency_us",
        &[],
        &metrics.latency().snapshot(),
    );
    expo.header(
        "bagpred_queue_wait_us",
        "histogram",
        "Time between enqueue and worker pickup, microseconds.",
    );
    expo.histogram(
        "bagpred_queue_wait_us",
        &[],
        &metrics.queue_wait().snapshot(),
    );
    expo.header(
        "bagpred_service_time_us",
        "histogram",
        "Service time (latency minus parse and queue wait), microseconds.",
    );
    expo.histogram(
        "bagpred_service_time_us",
        &[],
        &metrics.service().snapshot(),
    );

    expo.header(
        "bagpred_cache_hits_total",
        "counter",
        "Feature-cache lookups answered without computing, per map.",
    );
    expo.header(
        "bagpred_cache_misses_total",
        "counter",
        "Feature-cache lookups that had to compute, per map.",
    );
    expo.header(
        "bagpred_cache_evictions_total",
        "counter",
        "Feature-cache entries evicted to respect the capacity bound, per map.",
    );
    expo.header(
        "bagpred_cache_entries",
        "gauge",
        "Feature-cache entries currently held, per map.",
    );
    for map in inner.cache.map_stats() {
        let labels = [("map", map.name)];
        expo.sample("bagpred_cache_hits_total", &labels, map.hits as f64);
        expo.sample("bagpred_cache_misses_total", &labels, map.misses as f64);
        expo.sample(
            "bagpred_cache_evictions_total",
            &labels,
            map.evictions as f64,
        );
        expo.sample("bagpred_cache_entries", &labels, map.entries as f64);
    }
    expo.header(
        "bagpred_cache_hit_rate",
        "gauge",
        "Fraction of feature-cache lookups answered from the cache, all maps.",
    );
    expo.sample("bagpred_cache_hit_rate", &[], inner.cache.hit_rate());

    expo.header(
        "bagpred_stage_duration_us",
        "histogram",
        "Per-stage request duration, microseconds.",
    );
    for (stage, snap) in inner.stages.snapshot() {
        expo.histogram(
            "bagpred_stage_duration_us",
            &[("stage", stage.name())],
            &snap,
        );
    }

    expo.header(
        "bagpred_slow_requests_total",
        "counter",
        "Requests that crossed the slow-request threshold (ring captures).",
    );
    expo.sample(
        "bagpred_slow_requests_total",
        &[],
        inner.events.recorded() as f64,
    );
    expo.header(
        "bagpred_trace_ring_dropped_total",
        "counter",
        "Slow-request captures overwritten (or refused) by the bounded trace ring.",
    );
    expo.sample(
        "bagpred_trace_ring_dropped_total",
        &[],
        inner.events.dropped() as f64,
    );

    expo.header(
        "bagpred_worker_panics_total",
        "counter",
        "Batches whose predict call panicked (every job in the batch got err internal).",
    );
    expo.sample(
        "bagpred_worker_panics_total",
        &[],
        inner.robust.worker_panics() as f64,
    );
    expo.header(
        "bagpred_worker_respawns_total",
        "counter",
        "Worker threads restarted by the supervisor after a panic escaped the batch guard.",
    );
    expo.sample(
        "bagpred_worker_respawns_total",
        &[],
        inner.robust.worker_respawns() as f64,
    );
    expo.header(
        "bagpred_deadline_expired_total",
        "counter",
        "Requests shed at dequeue because their deadline_ms budget had passed.",
    );
    expo.sample(
        "bagpred_deadline_expired_total",
        &[],
        inner.robust.deadline_expired() as f64,
    );
    expo.header(
        "bagpred_cancelled_total",
        "counter",
        "Requests dropped at dequeue because a cancel arrived while they were still queued.",
    );
    expo.sample(
        "bagpred_cancelled_total",
        &[],
        inner.robust.cancelled() as f64,
    );
    expo.header(
        "bagpred_cancel_late_total",
        "counter",
        "Cancels that arrived after their target had already been served (answered ok cancel=late).",
    );
    expo.sample(
        "bagpred_cancel_late_total",
        &[],
        inner.robust.cancel_late() as f64,
    );
    expo.header(
        "bagpred_hedge_deduped_total",
        "counter",
        "Hedge-pair losers whose accounting was suppressed so the served attempt counts once.",
    );
    expo.sample(
        "bagpred_hedge_deduped_total",
        &[],
        inner.robust.hedge_deduped() as f64,
    );
    expo.header(
        "bagpred_brownout_shed_total",
        "counter",
        "Requests shed at enqueue by the priority brownout watermarks, by class.",
    );
    for prio in crate::metrics::Priority::ALL {
        expo.sample(
            "bagpred_brownout_shed_total",
            &[("prio", prio.name())],
            inner.robust.brownout_shed(prio) as f64,
        );
    }
    expo.header(
        "bagpred_model_quarantines_total",
        "counter",
        "Times a model crossed the consecutive-panic threshold and was quarantined.",
    );
    expo.sample(
        "bagpred_model_quarantines_total",
        &[],
        inner.robust.quarantines() as f64,
    );
    expo.header(
        "bagpred_quarantined_models",
        "gauge",
        "Models currently quarantined (answering err unavailable).",
    );
    expo.sample(
        "bagpred_quarantined_models",
        &[],
        inner.health.quarantined_count() as f64,
    );
    expo.header(
        "bagpred_faults_injected_total",
        "counter",
        "Faults fired by the configured fault plan (0 unless BAGPRED_FAULTS is set).",
    );
    expo.sample(
        "bagpred_faults_injected_total",
        &[],
        inner.config.faults.injected() as f64,
    );

    expo.header(
        "bagpred_outcomes_matched_total",
        "counter",
        "Outcome reports joined to the prediction they were acting on.",
    );
    expo.sample(
        "bagpred_outcomes_matched_total",
        &[],
        inner.outcomes.matched() as f64,
    );
    expo.header(
        "bagpred_outcomes_orphaned_total",
        "counter",
        "Outcome reports whose request id had no pending prediction.",
    );
    expo.sample(
        "bagpred_outcomes_orphaned_total",
        &[],
        inner.outcomes.orphaned() as f64,
    );
    expo.header(
        "bagpred_outcomes_expired_total",
        "counter",
        "Recorded predictions evicted unmatched (TTL or ring capacity).",
    );
    expo.sample(
        "bagpred_outcomes_expired_total",
        &[],
        inner.outcomes.expired() as f64,
    );
    expo.header(
        "bagpred_outcomes_pending",
        "gauge",
        "Served predictions currently awaiting their outcome report.",
    );
    expo.sample(
        "bagpred_outcomes_pending",
        &[],
        inner.pending_outcomes() as f64,
    );
    expo.header(
        "bagpred_drift_alarms_total",
        "counter",
        "Drift alarm edges: times a model was newly flagged as drifting.",
    );
    expo.sample(
        "bagpred_drift_alarms_total",
        &[],
        inner.outcomes.drift_alarms() as f64,
    );
    expo.header(
        "bagpred_drifting_models",
        "gauge",
        "Models whose advisory drift alarm is currently latched.",
    );
    expo.sample(
        "bagpred_drifting_models",
        &[],
        inner.health.drifting_count() as f64,
    );

    let boot = crate::metrics::boot_stats();
    expo.header(
        "bagpred_boot_snapshot_dir_errors_total",
        "counter",
        "Boots that failed because the snapshot directory was unusable.",
    );
    expo.sample(
        "bagpred_boot_snapshot_dir_errors_total",
        &[],
        boot.snapshot_dir_errors() as f64,
    );
    expo.header(
        "bagpred_boot_snapshots_quarantined_total",
        "counter",
        "Corrupt snapshot files moved aside as .corrupt during boot scans.",
    );
    expo.sample(
        "bagpred_boot_snapshots_quarantined_total",
        &[],
        boot.snapshots_quarantined() as f64,
    );

    expo.header(
        "bagpred_model_quarantined",
        "gauge",
        "Whether the model is quarantined (1) or serving (0), per model.",
    );
    expo.header(
        "bagpred_model_drifting",
        "gauge",
        "Whether the model's advisory drift alarm is latched (1) or clear (0), per model.",
    );
    for report in inner
        .registry
        .list()
        .into_iter()
        .map(|(name, _)| inner.health.report_for(&name))
    {
        let labels = [("model", report.model.as_str())];
        expo.sample(
            "bagpred_model_quarantined",
            &labels,
            if report.quarantined { 1.0 } else { 0.0 },
        );
        expo.sample(
            "bagpred_model_drifting",
            &labels,
            if report.drifting { 1.0 } else { 0.0 },
        );
    }

    expo.header(
        "bagpred_model_outcomes_total",
        "counter",
        "Outcome reports joined to predictions served by the model.",
    );
    expo.header(
        "bagpred_model_online_mape_percent",
        "gauge",
        "Mean absolute percentage error over every joined outcome, per model.",
    );
    expo.header(
        "bagpred_model_ewma_mape_percent",
        "gauge",
        "Exponentially weighted recent absolute percentage error, per model.",
    );
    expo.header(
        "bagpred_model_bias_us",
        "gauge",
        "Mean signed residual (positive = over-prediction), microseconds, per model.",
    );
    expo.header(
        "bagpred_model_residual_us",
        "histogram",
        "Absolute prediction residual |predicted - actual|, microseconds, per model.",
    );
    expo.header(
        "bagpred_model_calibration_ratio",
        "histogram",
        "Predicted/actual ratio scaled by 1024 (1024 = perfectly calibrated), per model.",
    );
    for name in inner.trackers.names() {
        let Some(tracker) = inner.trackers.get(&name) else {
            continue;
        };
        let labels = [("model", name.as_str())];
        let window = tracker.window();
        expo.sample(
            "bagpred_model_outcomes_total",
            &labels,
            window.matched() as f64,
        );
        expo.sample(
            "bagpred_model_online_mape_percent",
            &labels,
            window.online_mape_percent(),
        );
        expo.sample(
            "bagpred_model_ewma_mape_percent",
            &labels,
            window.ewma_mape_percent(),
        );
        expo.sample("bagpred_model_bias_us", &labels, window.bias_us());
        let snap = window.snapshot();
        expo.histogram("bagpred_model_residual_us", &labels, &snap.residual);
        expo.histogram(
            "bagpred_model_calibration_ratio",
            &labels,
            &snap.calibration,
        );
    }

    expo.header(
        "bagpred_model_received_total",
        "counter",
        "Requests resolved to the model.",
    );
    expo.header(
        "bagpred_model_succeeded_total",
        "counter",
        "Requests the model answered with an ok reply.",
    );
    expo.header(
        "bagpred_model_failed_total",
        "counter",
        "Requests charged to the model that failed.",
    );
    expo.header(
        "bagpred_model_latency_us",
        "histogram",
        "End-to-end latency of requests served by the model, microseconds.",
    );
    expo.header(
        "bagpred_model_queue_wait_us",
        "histogram",
        "Queue wait of requests served by the model, microseconds.",
    );
    expo.header(
        "bagpred_model_service_time_us",
        "histogram",
        "Service time of requests served by the model, microseconds.",
    );
    for name in inner.model_metrics.names() {
        let Some(model) = inner.model_metrics.get(&name) else {
            continue;
        };
        let labels = [("model", name.as_str())];
        let snap = model.snapshot();
        expo.sample(
            "bagpred_model_received_total",
            &labels,
            snap.received as f64,
        );
        expo.sample(
            "bagpred_model_succeeded_total",
            &labels,
            snap.succeeded as f64,
        );
        expo.sample("bagpred_model_failed_total", &labels, snap.failed as f64);
        expo.histogram(
            "bagpred_model_latency_us",
            &labels,
            &model.latency().snapshot(),
        );
        expo.histogram(
            "bagpred_model_queue_wait_us",
            &labels,
            &model.queue_wait().snapshot(),
        );
        expo.histogram(
            "bagpred_model_service_time_us",
            &labels,
            &model.service().snapshot(),
        );
    }

    expo.header(
        "bagpred_shard_queue_depth",
        "gauge",
        "Jobs waiting in the shard's queue right now, per shard.",
    );
    expo.header(
        "bagpred_shard_enqueued_total",
        "counter",
        "Jobs accepted into the shard's queue, per shard.",
    );
    expo.header(
        "bagpred_shard_served_total",
        "counter",
        "Jobs drained and answered by the shard's workers, per shard.",
    );
    expo.header(
        "bagpred_shard_shed_total",
        "counter",
        "Jobs the shard refused (queue full) or expired at dequeue, per shard.",
    );
    expo.header(
        "bagpred_shard_queue_wait_us",
        "gauge",
        "Time jobs sat in the shard's queue before pickup, microseconds, per shard and quantile.",
    );
    for shard in inner.shard_snapshots() {
        let labels = [("shard", shard.name.as_str())];
        expo.sample(
            "bagpred_shard_queue_depth",
            &labels,
            shard.queue_depth as f64,
        );
        expo.sample(
            "bagpred_shard_enqueued_total",
            &labels,
            shard.enqueued as f64,
        );
        expo.sample("bagpred_shard_served_total", &labels, shard.served as f64);
        expo.sample("bagpred_shard_shed_total", &labels, shard.shed as f64);
        for (quantile, value) in [
            ("0.5", shard.queue_wait.p50_us),
            ("0.95", shard.queue_wait.p95_us),
            ("0.99", shard.queue_wait.p99_us),
            ("1", shard.queue_wait.max_us),
        ] {
            expo.sample(
                "bagpred_shard_queue_wait_us",
                &[("shard", shard.name.as_str()), ("quantile", quantile)],
                value as f64,
            );
        }
    }

    expo.render()
}
