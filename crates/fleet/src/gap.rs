//! Measured optimality gaps on exhaustively solvable instances.
//!
//! Online policies can only be judged against the true optimum where the
//! optimum is computable: small static instances (all jobs present at
//! t=0, no deadlines). For each instance this module computes the global
//! minimum makespan by enumerating every set partition of the jobs into
//! feasible co-run blocks (≤ model capacity, predicted ≤ budget) and, for
//! each partition, the best assignment of blocks onto the k GPUs. Any
//! schedule the simulator can produce executes some such blocks
//! sequentially per GPU, so this is a true lower bound — the measured
//! gap `(policy − optimum) / optimum` is honest.

use crate::arrivals::{sample_workload, Job};
use crate::policy::{Policy, PolicyCtx};
use crate::sim::{simulate, SimConfig};
use bagpred_serve::error::ServeError;
use bagpred_trace::SplitMix64;
use bagpred_workloads::Workload;

/// Shape of the gap study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapConfig {
    /// Number of random instances.
    pub instances: usize,
    /// Jobs per instance (keep ≤ 7: the partition count is a Bell
    /// number).
    pub jobs: usize,
    /// GPUs per instance.
    pub gpus: usize,
    /// Seed for the instance sampler.
    pub seed: u64,
    /// Budget per instance = slack × the largest solo time, so every job
    /// is at least solo-schedulable (keep ≥ 1).
    pub budget_slack: f64,
}

impl Default for GapConfig {
    fn default() -> Self {
        Self {
            instances: 5,
            jobs: 6,
            gpus: 2,
            seed: 7,
            budget_slack: 1.15,
        }
    }
}

/// One policy's measured gap across all instances.
#[derive(Debug, Clone, PartialEq)]
pub struct GapRow {
    /// Policy name ([`Policy::name`]).
    pub policy: &'static str,
    /// Mean of per-instance gap percentages.
    pub mean_percent: f64,
    /// Worst per-instance gap percentage.
    pub max_percent: f64,
}

/// Minimum makespan over every feasible (partition, GPU-assignment) of
/// `jobs` — the exhaustive global optimum.
fn optimal_makespan(ctx: &PolicyCtx, gpus: usize, jobs: &[Workload]) -> Result<f64, ServeError> {
    let capacity = ctx.capacity();

    // Enumerate set partitions: job i joins an existing block or opens a
    // new one. Blocks are pruned on capacity here and on budget when
    // priced.
    fn partitions(
        ctx: &PolicyCtx,
        capacity: usize,
        gpus: usize,
        jobs: &[Workload],
        idx: usize,
        blocks: &mut Vec<Vec<Workload>>,
        best: &mut f64,
    ) -> Result<(), ServeError> {
        if idx == jobs.len() {
            let mut times = Vec::with_capacity(blocks.len());
            for block in blocks.iter() {
                let t = ctx.predict(block)?;
                if t > ctx.budget_s {
                    return Ok(()); // infeasible partition
                }
                times.push(t);
            }
            let makespan = min_makespan_assignment(&times, gpus);
            if makespan < *best {
                *best = makespan;
            }
            return Ok(());
        }
        for b in 0..blocks.len() {
            if blocks[b].len() >= capacity {
                continue;
            }
            blocks[b].push(jobs[idx]);
            partitions(ctx, capacity, gpus, jobs, idx + 1, blocks, best)?;
            blocks[b].pop();
        }
        blocks.push(vec![jobs[idx]]);
        partitions(ctx, capacity, gpus, jobs, idx + 1, blocks, best)?;
        blocks.pop();
        Ok(())
    }

    let mut best = f64::INFINITY;
    partitions(ctx, capacity, gpus, jobs, 0, &mut Vec::new(), &mut best)?;
    Ok(best)
}

/// Exact minimum of (max per-GPU sum) over assignments of `times` onto
/// `gpus` machines — branch-and-bound with first-empty symmetry break.
fn min_makespan_assignment(times: &[f64], gpus: usize) -> f64 {
    fn go(times: &[f64], idx: usize, loads: &mut Vec<f64>, used: usize, best: &mut f64) {
        if idx == times.len() {
            let makespan = loads.iter().cloned().fold(0.0f64, f64::max);
            if makespan < *best {
                *best = makespan;
            }
            return;
        }
        let limit = (used + 1).min(loads.len());
        for g in 0..limit {
            if loads[g] + times[idx] >= *best {
                continue; // bound: already no better than the incumbent
            }
            loads[g] += times[idx];
            go(times, idx + 1, loads, used.max(g + 1), best);
            loads[g] -= times[idx];
        }
    }
    let mut best = times.iter().sum::<f64>() + 1.0; // trivial upper bound
    go(times, 0, &mut vec![0.0; gpus], 0, &mut best);
    best
}

/// Runs every policy over `cfg.instances` random static instances and
/// reports its makespan gap against the exhaustive optimum.
///
/// The caller's `ctx.budget_s` is ignored; each instance derives its own
/// budget from `cfg.budget_slack`.
pub fn optimality_gaps(
    ctx: &PolicyCtx,
    policies: &[&dyn Policy],
    cfg: &GapConfig,
) -> Result<Vec<GapRow>, ServeError> {
    assert!(cfg.instances > 0, "need at least one instance");
    assert!(
        (2..=7).contains(&cfg.jobs),
        "instance size must be 2..=7 jobs (Bell-number blowup beyond)"
    );
    assert!(cfg.gpus > 0, "need at least one GPU");
    assert!(
        cfg.budget_slack >= 1.0,
        "slack < 1 would make some jobs unschedulable even solo"
    );

    let mut rng = SplitMix64::new(cfg.seed);
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];

    for _ in 0..cfg.instances {
        let workloads: Vec<Workload> = (0..cfg.jobs).map(|_| sample_workload(&mut rng)).collect();
        let max_solo = workloads
            .iter()
            .map(|&w| ctx.cache.app_features(w, ctx.platforms).gpu_time_s)
            .fold(0.0f64, f64::max);
        let instance_ctx = PolicyCtx {
            model: ctx.model,
            cache: ctx.cache,
            platforms: ctx.platforms,
            budget_s: cfg.budget_slack * max_solo,
        };

        let optimum = optimal_makespan(&instance_ctx, cfg.gpus, &workloads)?;
        assert!(
            optimum.is_finite() && optimum > 0.0,
            "slack ≥ 1 guarantees the all-singletons partition is feasible"
        );

        let jobs: Vec<Job> = workloads
            .iter()
            .enumerate()
            .map(|(i, &workload)| Job {
                id: i as u64,
                arrival_us: 0,
                deadline_us: u64::MAX,
                workload,
                priority: bagpred_serve::Priority::Normal,
            })
            .collect();
        let sim_cfg = SimConfig {
            gpus: cfg.gpus,
            window: cfg.jobs,
            ..SimConfig::default()
        };
        for (p, policy) in policies.iter().enumerate() {
            let outcome = simulate(*policy, &instance_ctx, &sim_cfg, &jobs)?;
            assert_eq!(
                outcome.shed, 0,
                "static instances have no deadlines and solo-feasible jobs"
            );
            // Guard against float noise: the sim cannot genuinely beat
            // the lower bound.
            let gap = ((outcome.makespan_s - optimum) / optimum * 100.0).max(0.0);
            gaps[p].push(gap);
        }
    }

    Ok(policies
        .iter()
        .zip(gaps)
        .map(|(policy, gs)| GapRow {
            policy: policy.name(),
            mean_percent: gs.iter().sum::<f64>() / gs.len() as f64,
            max_percent: gs.iter().cloned().fold(0.0f64, f64::max),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Exhaustive, FfdPolicy, SoloFallbackPolicy};
    use crate::testutil;
    use bagpred_core::Platforms;

    fn small_cfg() -> GapConfig {
        GapConfig {
            instances: 2,
            jobs: 4,
            ..GapConfig::default()
        }
    }

    #[test]
    fn covers_every_policy_with_finite_nonnegative_gaps() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5, // ignored: gap derives per-instance budgets
        };
        let ffd = FfdPolicy;
        let solo = SoloFallbackPolicy;
        let optimal = Exhaustive::default();
        let policies: [&dyn crate::policy::Policy; 3] = [&ffd, &solo, &optimal];
        let rows = optimality_gaps(&ctx, &policies, &small_cfg()).expect("runs");
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.policy).collect::<Vec<_>>(),
            vec!["ffd", "solo", "optimal"]
        );
        for row in &rows {
            assert!(
                row.mean_percent.is_finite() && row.mean_percent >= 0.0,
                "{row:?}"
            );
            assert!(row.max_percent >= row.mean_percent - 1e-9, "{row:?}");
        }
    }

    #[test]
    fn gap_study_is_deterministic() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        let ffd = FfdPolicy;
        let policies: [&dyn crate::policy::Policy; 1] = [&ffd];
        let a = optimality_gaps(&ctx, &policies, &small_cfg()).expect("runs");
        let b = optimality_gaps(&ctx, &policies, &small_cfg()).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn balanced_assignment_is_exact() {
        // 3 blocks on 2 machines: optimal is max(3, 2+2) = 4.
        assert_eq!(min_makespan_assignment(&[3.0, 2.0, 2.0], 2), 4.0);
        assert_eq!(min_makespan_assignment(&[5.0, 4.0, 3.0, 2.0], 2), 7.0);
        assert_eq!(min_makespan_assignment(&[1.0], 4), 1.0);
    }
}
