//! Capacity-planning report: JSON (`bagpred-fleet-v1`) and a
//! human-readable rendering.
//!
//! The JSON is hand-formatted with fixed key order and fixed decimal
//! widths — the offline build has no JSON dependency, and the fleet
//! determinism test compares reports *byte for byte*.

use crate::arrivals::ArrivalConfig;
use crate::gap::{GapConfig, GapRow};

/// Schema tag embedded in (and required of) every fleet report.
pub const SCHEMA: &str = "bagpred-fleet-v1";

/// One (policy, fleet size) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCell {
    /// Policy name (`ffd`, `solo`, …).
    pub policy: &'static str,
    /// Fleet size k for this cell.
    pub gpus: usize,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs lost to deadlines, brownout, or unschedulability.
    pub shed: u64,
    /// `shed / arrivals`.
    pub shed_rate: f64,
    /// The brownout slice of `shed`, by class (high, normal, low).
    pub brownout_shed: [u64; 3],
    /// Median completion latency (queue wait + predicted run), ms.
    pub p50_ms: f64,
    /// Tail completion latency, ms.
    pub p99_ms: f64,
    /// Mean completion latency, ms.
    pub mean_ms: f64,
    /// Virtual time of the last completion, seconds.
    pub makespan_s: f64,
    /// Delivered solo-work per GPU-second of occupancy.
    pub packing_efficiency: f64,
    /// Busy GPU-seconds over k × makespan.
    pub utilization: f64,
    /// Dispatched sets with ≥ 2 members.
    pub corun_sets: u64,
    /// Online MAPE of dispatched predictions vs the ground-truth co-run
    /// simulation — the closed-loop accuracy a reporting client fleet
    /// would observe.
    pub online_mape_percent: f64,
}

/// The full capacity-planning report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// True when produced with `--smoke` (short trace, tiny sweep).
    pub smoke: bool,
    /// The arrival process that was replayed.
    pub arrivals_cfg: ArrivalConfig,
    /// Per-GPU predicted-latency budget, seconds.
    pub budget_s: f64,
    /// Scheduling window the policies saw.
    pub window: usize,
    /// Brownout admission bound (0 = brownout disabled).
    pub queue_capacity: usize,
    /// Fleet sizes swept.
    pub gpu_sweep: Vec<usize>,
    /// Jobs in the generated trace.
    pub arrivals: u64,
    /// One cell per (policy, k).
    pub cells: Vec<PolicyCell>,
    /// Shape of the gap study (`None` when skipped).
    pub gap_cfg: Option<GapConfig>,
    /// Per-policy optimality gaps (empty when skipped).
    pub gaps: Vec<GapRow>,
}

impl FleetReport {
    /// Hand-formatted JSON with a fixed key order; byte-stable for a
    /// fixed config and seed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str(&format!("  \"seed\": {},\n", self.arrivals_cfg.seed));
        out.push_str(&format!(
            "  \"duration_s\": {:.3},\n",
            self.arrivals_cfg.duration_s
        ));
        out.push_str(&format!(
            "  \"base_rate_per_s\": {:.3},\n",
            self.arrivals_cfg.base_rate_per_s
        ));
        out.push_str(&format!(
            "  \"diurnal_amplitude\": {:.3},\n",
            self.arrivals_cfg.diurnal_amplitude
        ));
        out.push_str(&format!(
            "  \"day_period_s\": {:.3},\n",
            self.arrivals_cfg.day_period_s
        ));
        out.push_str(&format!(
            "  \"patience_s\": {:.3},\n",
            self.arrivals_cfg.patience_s
        ));
        out.push_str(&format!("  \"budget_s\": {:.6},\n", self.budget_s));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        let sweep: Vec<String> = self.gpu_sweep.iter().map(|k| k.to_string()).collect();
        out.push_str(&format!("  \"gpu_sweep\": [{}],\n", sweep.join(", ")));
        out.push_str(&format!("  \"arrivals\": {},\n", self.arrivals));
        for cell in &self.cells {
            let tag = format!("{}_k{}", cell.policy, cell.gpus);
            out.push_str(&format!("  \"{tag}_completed\": {},\n", cell.completed));
            out.push_str(&format!("  \"{tag}_shed\": {},\n", cell.shed));
            out.push_str(&format!("  \"{tag}_shed_rate\": {:.6},\n", cell.shed_rate));
            out.push_str(&format!(
                "  \"{tag}_brownout_shed_high\": {},\n",
                cell.brownout_shed[0]
            ));
            out.push_str(&format!(
                "  \"{tag}_brownout_shed_normal\": {},\n",
                cell.brownout_shed[1]
            ));
            out.push_str(&format!(
                "  \"{tag}_brownout_shed_low\": {},\n",
                cell.brownout_shed[2]
            ));
            out.push_str(&format!("  \"{tag}_p50_ms\": {:.3},\n", cell.p50_ms));
            out.push_str(&format!("  \"{tag}_p99_ms\": {:.3},\n", cell.p99_ms));
            out.push_str(&format!("  \"{tag}_mean_ms\": {:.3},\n", cell.mean_ms));
            out.push_str(&format!(
                "  \"{tag}_makespan_s\": {:.6},\n",
                cell.makespan_s
            ));
            out.push_str(&format!(
                "  \"{tag}_packing_efficiency\": {:.6},\n",
                cell.packing_efficiency
            ));
            out.push_str(&format!(
                "  \"{tag}_utilization\": {:.6},\n",
                cell.utilization
            ));
            out.push_str(&format!("  \"{tag}_corun_sets\": {},\n", cell.corun_sets));
            out.push_str(&format!(
                "  \"{tag}_online_mape_percent\": {:.3},\n",
                cell.online_mape_percent
            ));
        }
        match &self.gap_cfg {
            Some(cfg) => {
                out.push_str(&format!("  \"gap_instances\": {},\n", cfg.instances));
                out.push_str(&format!("  \"gap_jobs\": {},\n", cfg.jobs));
                out.push_str(&format!("  \"gap_gpus\": {},\n", cfg.gpus));
                out.push_str(&format!(
                    "  \"gap_budget_slack\": {:.3},\n",
                    cfg.budget_slack
                ));
            }
            None => out.push_str("  \"gap_instances\": 0,\n"),
        }
        for (i, row) in self.gaps.iter().enumerate() {
            let sep = if i + 1 == self.gaps.len() { "" } else { "," };
            out.push_str(&format!(
                "  \"{p}_gap_mean_percent\": {:.3},\n  \"{p}_gap_max_percent\": {:.3}{sep}\n",
                row.mean_percent,
                row.max_percent,
                p = row.policy,
            ));
        }
        if self.gaps.is_empty() {
            // Close the object after the trailing comma of the last
            // non-gap key.
            let trimmed = out.trim_end_matches(['\n', ',']).to_string();
            out = trimmed;
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Human-readable summary tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet simulation: {} arrivals over {:.0}s (rate {:.1}/s, amplitude {:.1}, \
             patience {:.1}s, budget {:.3}s, seed {})\n\n",
            self.arrivals,
            self.arrivals_cfg.duration_s,
            self.arrivals_cfg.base_rate_per_s,
            self.arrivals_cfg.diurnal_amplitude,
            self.arrivals_cfg.patience_s,
            self.budget_s,
            self.arrivals_cfg.seed,
        ));
        out.push_str(&format!(
            "{:<8} {:>3} {:>9} {:>6} {:>9} {:>12} {:>9} {:>9} {:>10} {:>8} {:>7} {:>7} {:>8}\n",
            "policy",
            "k",
            "completed",
            "shed",
            "shed_rate",
            "bshed h/n/l",
            "p50_ms",
            "p99_ms",
            "makespan_s",
            "packing",
            "util",
            "coruns",
            "mape%",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<8} {:>3} {:>9} {:>6} {:>9.4} {:>12} {:>9.2} {:>9.2} {:>10.3} {:>8.3} {:>7.3} \
                 {:>7} {:>8.2}\n",
                c.policy,
                c.gpus,
                c.completed,
                c.shed,
                c.shed_rate,
                format!(
                    "{}/{}/{}",
                    c.brownout_shed[0], c.brownout_shed[1], c.brownout_shed[2]
                ),
                c.p50_ms,
                c.p99_ms,
                c.makespan_s,
                c.packing_efficiency,
                c.utilization,
                c.corun_sets,
                c.online_mape_percent,
            ));
        }
        if let Some(cfg) = &self.gap_cfg {
            out.push_str(&format!(
                "\noptimality gap vs exhaustive optimum ({} instances of {} jobs on {} GPUs, \
                 slack {:.2}):\n",
                cfg.instances, cfg.jobs, cfg.gpus, cfg.budget_slack
            ));
            out.push_str(&format!(
                "{:<8} {:>10} {:>10}\n",
                "policy", "mean gap %", "max gap %"
            ));
            for row in &self.gaps {
                out.push_str(&format!(
                    "{:<8} {:>10.2} {:>10.2}\n",
                    row.policy, row.mean_percent, row.max_percent
                ));
            }
        }
        out
    }
}

/// Extracts a numeric value from a hand-formatted report.
///
/// Same contract as the bench harness's extractor: the key must be
/// present with a numeric value.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    value.parse().ok()
}
