//! Synthetic diurnal arrival traces.
//!
//! Jobs arrive by a non-homogeneous Poisson process whose rate follows a
//! sinusoidal "day": `λ(t) = base · (1 + amplitude · sin(2πt/period))`.
//! The process is sampled by thinning — draw candidate arrivals at the
//! peak rate `λ_max = base · (1 + amplitude)` and keep each with
//! probability `λ(t)/λ_max` — driven entirely by the seeded
//! [`SplitMix64`], so a trace is a pure function of its config.

use bagpred_serve::Priority;
use bagpred_trace::SplitMix64;
use bagpred_workloads::{Benchmark, Workload};

/// Batch sizes the synthetic trace draws from: the low end of the
/// paper's sweep, so individual jobs stay sub-second and a simulated
/// hour holds thousands of them.
pub const TRACE_BATCHES: [usize; 3] = [10, 20, 40];

/// Parameters of the synthetic arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Simulated span in seconds; arrivals stop after this.
    pub duration_s: f64,
    /// Mean arrival rate, jobs per second.
    pub base_rate_per_s: f64,
    /// Diurnal swing in `[0, 1]`: 0 is a flat Poisson process, 1 swings
    /// between zero and twice the base rate.
    pub diurnal_amplitude: f64,
    /// Length of one synthetic "day" in simulated seconds.
    pub day_period_s: f64,
    /// How long a job will wait in queue before its deadline passes and
    /// it is shed, seconds.
    pub patience_s: f64,
    /// RNG seed; same seed + config ⇒ byte-identical trace.
    pub seed: u64,
}

impl Default for ArrivalConfig {
    // 125 jobs/s against ~12 ms mean solo time oversubscribes one GPU
    // (ρ ≈ 1.5) and leaves four comfortable, so the default k-sweep
    // actually exercises shedding, queueing, and co-run packing.
    fn default() -> Self {
        Self {
            duration_s: 60.0,
            base_rate_per_s: 125.0,
            diurnal_amplitude: 0.6,
            day_period_s: 30.0,
            patience_s: 0.5,
            seed: 42,
        }
    }
}

/// One offloaded inference job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Dense arrival index, also the deterministic tie-break everywhere.
    pub id: u64,
    /// Arrival time, virtual microseconds.
    pub arrival_us: u64,
    /// Shed the job if still queued past this instant (µs).
    pub deadline_us: u64,
    /// What the job wants to run.
    pub workload: Workload,
    /// Brownout class: which queue-pressure watermark sheds this job
    /// first (mirrors the serving layer's `prio=` option).
    pub priority: Priority,
}

/// Draws one workload uniformly over `Benchmark::ALL` × [`TRACE_BATCHES`].
///
/// Shared with the optimality-gap instances so both samplers agree on the
/// job population.
pub fn sample_workload(rng: &mut SplitMix64) -> Workload {
    let bench = Benchmark::ALL[rng.next_below(Benchmark::ALL.len() as u64) as usize];
    let batch = TRACE_BATCHES[rng.next_below(TRACE_BATCHES.len() as u64) as usize];
    Workload::new(bench, batch)
}

/// Draws a brownout class with the fixed fleet mix: 20% high, 60%
/// normal, 20% low — enough of every class that a watermark sweep sees
/// all three shed curves.
pub fn sample_priority(rng: &mut SplitMix64) -> Priority {
    match rng.next_below(10) {
        0 | 1 => Priority::High,
        8 | 9 => Priority::Low,
        _ => Priority::Normal,
    }
}

/// Generates the full arrival trace for `cfg`, sorted by arrival time.
///
/// # Panics
///
/// On non-positive duration/rate/period/patience or amplitude outside
/// `[0, 1]` — these are config errors, not runtime conditions.
pub fn generate(cfg: &ArrivalConfig) -> Vec<Job> {
    assert!(
        cfg.duration_s > 0.0 && cfg.duration_s.is_finite(),
        "duration must be positive"
    );
    assert!(
        cfg.base_rate_per_s > 0.0 && cfg.base_rate_per_s.is_finite(),
        "rate must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.diurnal_amplitude),
        "amplitude must be in [0, 1]"
    );
    assert!(
        cfg.day_period_s > 0.0 && cfg.day_period_s.is_finite(),
        "day period must be positive"
    );
    assert!(
        cfg.patience_s > 0.0 && cfg.patience_s.is_finite(),
        "patience must be positive"
    );

    let mut time_rng = SplitMix64::new(cfg.seed);
    let mut work_rng = time_rng.split();
    let lambda_max = cfg.base_rate_per_s * (1.0 + cfg.diurnal_amplitude);
    let patience_us = (cfg.patience_s * 1e6).ceil() as u64;

    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival at the peak rate; `1 - u` keeps the
        // log argument in (0, 1].
        let u = time_rng.next_f64();
        t += -(1.0 - u).ln() / lambda_max;
        if t >= cfg.duration_s {
            break;
        }
        let lambda_t = cfg.base_rate_per_s
            * (1.0 + cfg.diurnal_amplitude * (std::f64::consts::TAU * t / cfg.day_period_s).sin());
        if time_rng.next_f64() * lambda_max >= lambda_t {
            continue; // thinned out: off-peak candidate
        }
        let arrival_us = (t * 1e6) as u64;
        jobs.push(Job {
            id: jobs.len() as u64,
            arrival_us,
            deadline_us: arrival_us.saturating_add(patience_us),
            workload: sample_workload(&mut work_rng),
            priority: sample_priority(&mut work_rng),
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_trace() {
        let cfg = ArrivalConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ArrivalConfig::default());
        let b = generate(&ArrivalConfig {
            seed: 43,
            ..ArrivalConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_in_range_with_dense_ids() {
        let cfg = ArrivalConfig::default();
        let jobs = generate(&cfg);
        assert!(!jobs.is_empty());
        let end_us = (cfg.duration_s * 1e6) as u64;
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i as u64);
            assert!(job.arrival_us < end_us);
            assert!(job.deadline_us > job.arrival_us);
            if i > 0 {
                assert!(job.arrival_us >= jobs[i - 1].arrival_us);
            }
        }
    }

    #[test]
    fn mean_rate_is_near_the_configured_base() {
        // Amplitude 0 ⇒ plain Poisson; over a long window the count
        // concentrates around rate × duration.
        let cfg = ArrivalConfig {
            duration_s: 500.0,
            base_rate_per_s: 8.0,
            diurnal_amplitude: 0.0,
            ..ArrivalConfig::default()
        };
        let n = generate(&cfg).len() as f64;
        let expected = cfg.base_rate_per_s * cfg.duration_s;
        assert!(
            (n - expected).abs() < 0.1 * expected,
            "{n} arrivals vs expected {expected}"
        );
    }

    #[test]
    fn diurnal_swing_modulates_density() {
        // With full amplitude the first quarter-day (rising sine) must be
        // busier than the third quarter (trough).
        let cfg = ArrivalConfig {
            duration_s: 400.0,
            base_rate_per_s: 8.0,
            diurnal_amplitude: 1.0,
            day_period_s: 400.0,
            ..ArrivalConfig::default()
        };
        let jobs = generate(&cfg);
        let quarter = (100.0 * 1e6) as u64;
        let peak = jobs.iter().filter(|j| j.arrival_us < quarter).count();
        let trough = jobs
            .iter()
            .filter(|j| j.arrival_us >= 2 * quarter && j.arrival_us < 3 * quarter)
            .count();
        assert!(peak > 2 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    #[should_panic(expected = "amplitude must be in [0, 1]")]
    fn rejects_bad_amplitude() {
        generate(&ArrivalConfig {
            diurnal_amplitude: 1.5,
            ..ArrivalConfig::default()
        });
    }
}
