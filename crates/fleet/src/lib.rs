//! Trace-driven fleet scheduling simulator.
//!
//! The paper's predictor answers "how slow would these apps be
//! *together*?" without running the co-run; the serving layer turns that
//! into per-request admission. This crate closes the loop at fleet
//! scale: it replays a synthetic diurnal arrival trace ([`arrivals`])
//! through the real prediction stack on `k` simulated GPUs ([`sim`]),
//! with the scheduling decision pluggable behind a [`Policy`] trait
//! ([`policy`]) — today's FFD admission, the solo-fallback variant, and
//! an exhaustive comparator — and measures what each policy costs:
//! shed rate, p50/p99 completion latency, packing efficiency, and the
//! optimality gap against a true exhaustive lower bound on small
//! instances ([`gap`]). Results render as the `bagpred-fleet-v1` report
//! ([`report`]), the capacity-planning artifact behind `repro fleet`.

pub mod arrivals;
pub mod gap;
pub mod policy;
pub mod report;
pub mod sim;

pub use arrivals::{generate, ArrivalConfig, Job};
pub use gap::{optimality_gaps, GapConfig, GapRow};
pub use policy::{by_name, standard, Exhaustive, FfdPolicy, Policy, PolicyCtx, SoloFallbackPolicy};
pub use report::{json_number, FleetReport, PolicyCell, SCHEMA};
pub use sim::{simulate, SimConfig, SimOutcome};

use bagpred_core::Platforms;
use bagpred_serve::bootstrap;
use bagpred_serve::cache::FeatureCache;
use bagpred_serve::error::ServeError;
use bagpred_serve::snapshot::ServableModel;

/// Everything one `repro fleet` run needs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The arrival process to replay.
    pub arrivals: ArrivalConfig,
    /// Per-GPU predicted-latency budget, seconds.
    pub budget_s: f64,
    /// Scheduling window (queued jobs visible per round).
    pub window: usize,
    /// Admission queue bound for the priority brownout; `0` disables
    /// brownout (unbounded queue).
    pub queue_capacity: usize,
    /// Fleet sizes to sweep.
    pub gpu_sweep: Vec<usize>,
    /// Policy names to sweep (resolved via [`policy::by_name`]).
    pub policies: Vec<String>,
    /// The gap study; `None` skips it.
    pub gap: Option<GapConfig>,
    /// Marks the report as a smoke run.
    pub smoke: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            arrivals: ArrivalConfig::default(),
            budget_s: 0.5,
            window: 6,
            // Deep enough that undersubscribed fleets never brown out,
            // shallow enough that the k=1 cell's shedding is SLO-
            // differentiated rather than blind deadline lapses.
            queue_capacity: 64,
            gpu_sweep: vec![1, 2, 4],
            policies: vec!["ffd".into(), "solo".into()],
            gap: Some(GapConfig::default()),
            smoke: false,
        }
    }
}

impl FleetConfig {
    /// The short configuration `scripts/verify.sh` runs: a few seconds
    /// of trace, two fleet sizes, three gap instances.
    pub fn smoke() -> Self {
        Self {
            arrivals: ArrivalConfig {
                duration_s: 10.0,
                ..ArrivalConfig::default()
            },
            gpu_sweep: vec![1, 2],
            gap: Some(GapConfig {
                instances: 3,
                ..GapConfig::default()
            }),
            smoke: true,
            ..Self::default()
        }
    }
}

/// Runs the full sweep against an already-trained model.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unknown policy names or degenerate
/// configs; prediction errors propagate.
pub fn run_with(
    model: &ServableModel,
    cache: &FeatureCache,
    platforms: &Platforms,
    cfg: &FleetConfig,
) -> Result<FleetReport, ServeError> {
    let policies: Vec<Box<dyn Policy>> = cfg
        .policies
        .iter()
        .map(|name| {
            by_name(name).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "unknown policy `{name}` (expected ffd, solo, or optimal)"
                ))
            })
        })
        .collect::<Result<_, _>>()?;

    let ctx = PolicyCtx {
        model,
        cache,
        platforms,
        budget_s: cfg.budget_s,
    };
    let jobs = generate(&cfg.arrivals);

    let mut cells = Vec::new();
    for policy in &policies {
        for &k in &cfg.gpu_sweep {
            let sim_cfg = SimConfig {
                gpus: k,
                window: cfg.window,
                queue_capacity: cfg.queue_capacity,
                ..SimConfig::default()
            };
            let outcome = simulate(policy.as_ref(), &ctx, &sim_cfg, &jobs)?;
            let snapshot = outcome.latency.snapshot();
            cells.push(PolicyCell {
                policy: policy.name(),
                gpus: k,
                completed: outcome.completed,
                shed: outcome.shed,
                shed_rate: outcome.shed_rate(),
                brownout_shed: outcome.brownout_shed,
                p50_ms: snapshot.quantile(0.50) as f64 / 1e3,
                p99_ms: snapshot.quantile(0.99) as f64 / 1e3,
                mean_ms: snapshot.mean() / 1e3,
                makespan_s: outcome.makespan_s,
                packing_efficiency: outcome.packing_efficiency(),
                utilization: outcome.utilization(k),
                corun_sets: outcome.corun_sets,
                online_mape_percent: outcome.online_mape_percent(),
            });
        }
    }

    let gaps = match &cfg.gap {
        Some(gap_cfg) => {
            // The gap table always covers the two production policies
            // plus the exhaustive comparator, whatever the sweep ran.
            let ffd = FfdPolicy;
            let solo = SoloFallbackPolicy;
            let optimal = Exhaustive::default();
            let contenders: [&dyn Policy; 3] = [&ffd, &solo, &optimal];
            optimality_gaps(&ctx, &contenders, gap_cfg)?
        }
        None => Vec::new(),
    };

    Ok(FleetReport {
        smoke: cfg.smoke,
        arrivals_cfg: cfg.arrivals,
        budget_s: cfg.budget_s,
        window: cfg.window,
        queue_capacity: cfg.queue_capacity,
        gpu_sweep: cfg.gpu_sweep.clone(),
        arrivals: jobs.len() as u64,
        cells,
        gap_cfg: cfg.gap,
        gaps,
    })
}

/// [`run_with`], but bootstraps the default registry first (trains the
/// pair and n-bag models — the slow part).
pub fn run(cfg: &FleetConfig) -> Result<FleetReport, ServeError> {
    let platforms = Platforms::paper();
    let registry = bootstrap::default_registry(&platforms);
    let model = registry
        .get(bootstrap::NBAG_MODEL)
        .expect("default registry always holds the n-bag model");
    let cache = FeatureCache::new();
    run_with(&model, &cache, &platforms, cfg)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: model training dominates every fleet test, so
    //! the registry is trained once per test binary.

    use bagpred_core::Platforms;
    use bagpred_serve::bootstrap;
    use bagpred_serve::cache::FeatureCache;
    use bagpred_serve::snapshot::{ModelRegistry, ServableModel};
    use std::sync::{Arc, OnceLock};

    pub fn registry() -> Arc<ModelRegistry> {
        static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
        Arc::clone(REGISTRY.get_or_init(|| bootstrap::default_registry(&Platforms::paper())))
    }

    pub fn nbag_model() -> Arc<ServableModel> {
        registry().get(bootstrap::NBAG_MODEL).expect("bootstrapped")
    }

    pub fn shared_cache() -> &'static FeatureCache {
        static CACHE: OnceLock<FeatureCache> = OnceLock::new();
        CACHE.get_or_init(FeatureCache::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;
    use bagpred_workloads::{Benchmark, Workload};

    fn ctx<'a>(
        model: &'a ServableModel,
        cache: &'a FeatureCache,
        platforms: &'a Platforms,
        budget_s: f64,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            model,
            cache,
            platforms,
            budget_s,
        }
    }

    #[test]
    fn run_with_produces_cells_for_every_policy_and_k() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let cfg = FleetConfig {
            arrivals: ArrivalConfig {
                duration_s: 5.0,
                ..ArrivalConfig::default()
            },
            gpu_sweep: vec![1, 2],
            gap: None,
            ..FleetConfig::default()
        };
        let report = run_with(&model, cache, &platforms, &cfg).expect("runs");
        assert_eq!(report.cells.len(), 4, "2 policies × 2 fleet sizes");
        assert!(report.arrivals > 0);
        for cell in &report.cells {
            assert_eq!(
                cell.completed + cell.shed,
                report.arrivals,
                "{}_k{}: every arrival completes or sheds",
                cell.policy,
                cell.gpus
            );
        }
    }

    #[test]
    fn more_gpus_never_hurt_throughput() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let cfg = FleetConfig {
            arrivals: ArrivalConfig {
                duration_s: 5.0,
                ..ArrivalConfig::default()
            },
            gpu_sweep: vec![1, 4],
            policies: vec!["ffd".into()],
            gap: None,
            ..FleetConfig::default()
        };
        let report = run_with(&model, cache, &platforms, &cfg).expect("runs");
        let k1 = &report.cells[0];
        let k4 = &report.cells[1];
        assert!(
            k4.completed >= k1.completed,
            "k=4 completed {} < k=1 completed {}",
            k4.completed,
            k1.completed
        );
        assert!(k4.shed <= k1.shed);
    }

    #[test]
    fn unknown_policy_is_a_bad_request() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let cfg = FleetConfig {
            policies: vec!["magic".into()],
            ..FleetConfig::default()
        };
        assert!(matches!(
            run_with(&model, cache, &platforms, &cfg),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn exhaustive_policy_clears_tiny_static_instances() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let workloads = [
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 20),
            Workload::new(Benchmark::Fast, 20),
            Workload::new(Benchmark::Svm, 20),
        ];
        let max_solo = workloads
            .iter()
            .map(|&w| cache.app_features(w, &platforms).gpu_time_s)
            .fold(0.0f64, f64::max);
        let c = ctx(&model, cache, &platforms, 2.0 * max_solo);
        let jobs: Vec<Job> = workloads
            .iter()
            .enumerate()
            .map(|(i, &workload)| Job {
                id: i as u64,
                arrival_us: 0,
                deadline_us: u64::MAX,
                workload,
                priority: bagpred_serve::Priority::Normal,
            })
            .collect();
        let sim_cfg = SimConfig {
            gpus: 2,
            window: 4,
            ..SimConfig::default()
        };
        let outcome = simulate(&Exhaustive::default(), &c, &sim_cfg, &jobs).expect("runs");
        assert_eq!(outcome.completed, 4);
        assert_eq!(outcome.shed, 0);
        assert!(
            outcome.makespan_s >= max_solo,
            "makespan {} cannot beat the longest solo {}",
            outcome.makespan_s,
            max_solo
        );
        // Work-minimizing search never admits a co-run that loses to
        // serializing its members, so occupancy is bounded by Σ solos.
        assert!(outcome.busy_gpu_s <= outcome.solo_completed_s * (1.0 + 1e-9));
    }
}
