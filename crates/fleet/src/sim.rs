//! Deterministic discrete-event fleet simulator.
//!
//! Virtual time is an integer microsecond counter. Two event sources
//! drive it: the pre-generated arrival trace and a completion heap keyed
//! `(finish_us, seq)` — the monotone `seq` makes heap order total, so the
//! run is a pure function of (trace, policy, config). At each event time
//! the loop frees finished GPUs, admits arrivals to the FIFO queue, sheds
//! jobs whose deadline passed, then asks the policy to fill the idle GPUs
//! from the queue's head window. A co-run set occupies its GPU for the
//! *predicted* bag time — the whole point of the paper's predictor is
//! that this number exists without running the co-run.
//!
//! Rejection by the policy means *waiting*, not loss; a job is only lost
//! when its deadline lapses in queue, or — livelock guard — when every
//! GPU is idle and the policy still cannot place it, which proves the job
//! can never run under the budget.

use crate::arrivals::Job;
use crate::policy::{Policy, PolicyCtx};
use bagpred_obs::{LogHistogram, ResidualWindow};
use bagpred_serve::error::ServeError;
use bagpred_serve::Priority;
use bagpred_workloads::Workload;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Fleet size: number of identical GPUs.
    pub gpus: usize,
    /// Scheduling window: how many queued jobs the policy sees per round.
    pub window: usize,
    /// Admission queue bound for the priority brownout (mirrors the
    /// serving layer's per-shard capacity): `0` disables brownout and
    /// the queue is unbounded, the pre-brownout behavior.
    pub queue_capacity: usize,
    /// Low-class watermark as a fraction of `queue_capacity`: a `low`
    /// arrival sheds once the queue is this full.
    pub brownout_low: f64,
    /// Normal-class watermark as a fraction of `queue_capacity`. `high`
    /// arrivals shed only at the hard capacity bound.
    pub brownout_normal: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gpus: 2,
            window: 6,
            queue_capacity: 0,
            brownout_low: 0.5,
            brownout_normal: 0.75,
        }
    }
}

impl SimConfig {
    /// Queue depth at which an arrival of `prio` sheds, or `None` when
    /// brownout is disabled. Same watermark ladder as the serving
    /// engine: low sheds first, then normal, and high holds out until
    /// the queue is hard-full.
    fn brownout_limit(&self, prio: Priority) -> Option<usize> {
        if self.queue_capacity == 0 {
            return None;
        }
        let fraction = match prio {
            Priority::High => return Some(self.queue_capacity),
            Priority::Normal => self.brownout_normal,
            Priority::Low => self.brownout_low,
        };
        let limit = (self.queue_capacity as f64 * fraction).ceil() as usize;
        Some(limit.min(self.queue_capacity).max(1))
    }
}

/// Aggregated results of one run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Jobs in the input trace.
    pub arrivals: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs lost: deadline lapsed in queue, browned out at admission,
    /// or unschedulable under the budget.
    pub shed: u64,
    /// The brownout slice of `shed`, by class ([`Priority::index`]
    /// order: high, normal, low). All zero when
    /// [`SimConfig::queue_capacity`] is 0.
    pub brownout_shed: [u64; 3],
    /// Virtual time of the last completion, seconds.
    pub makespan_s: f64,
    /// Σ over dispatched co-run sets of predicted bag time — GPU-seconds
    /// of occupancy.
    pub busy_gpu_s: f64,
    /// Σ of predicted *solo* times of completed jobs: the work actually
    /// delivered, in solo-GPU-seconds.
    pub solo_completed_s: f64,
    /// Dispatched sets with ≥ 2 members (actual co-runs).
    pub corun_sets: u64,
    /// Per-job completion latency (queue wait + predicted run), µs.
    pub latency: LogHistogram,
    /// The closed loop: every dispatched set's predicted time joined
    /// against the ground-truth co-run simulation of the same set — the
    /// outcome a real client would report back after running it. One
    /// observation per dispatched set.
    pub residuals: ResidualWindow,
}

impl SimOutcome {
    /// Fraction of arrivals that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }

    /// Delivered solo-work per GPU-second of occupancy. Above 1 means
    /// co-running packed more work than serial execution of the same
    /// jobs would have; below 1 means interference ate the gain.
    pub fn packing_efficiency(&self) -> f64 {
        if self.busy_gpu_s == 0.0 {
            0.0
        } else {
            self.solo_completed_s / self.busy_gpu_s
        }
    }

    /// Fraction of fleet capacity (k GPUs × makespan) spent busy.
    pub fn utilization(&self, gpus: usize) -> f64 {
        let capacity = gpus as f64 * self.makespan_s;
        if capacity == 0.0 {
            0.0
        } else {
            self.busy_gpu_s / capacity
        }
    }

    /// Online MAPE of the dispatched predictions against ground truth —
    /// the fleet-level number the serving layer's per-model
    /// `bagpred_model_online_mape_percent` gauge would converge to if
    /// every client reported its outcome.
    pub fn online_mape_percent(&self) -> f64 {
        self.residuals.online_mape_percent()
    }
}

/// Ground-truth runtime of one dispatched set, whole microseconds: the
/// co-run GPU simulation the predictor exists to avoid — exactly what a
/// client would measure and report after acting on the prediction.
/// Memoized per sorted set (dispatch repeats the same combinations), so
/// a policy's truth cost is one simulation per distinct set.
fn true_run_us(
    truths: &mut HashMap<Vec<Workload>, u64>,
    platforms: &bagpred_core::Platforms,
    apps: &[Workload],
) -> u64 {
    let mut key: Vec<Workload> = apps.to_vec();
    key.sort_by_key(|w| (w.benchmark().name(), w.batch_size()));
    if let Some(&us) = truths.get(&key) {
        return us;
    }
    let profiles: Vec<_> = key.iter().map(Workload::profile).collect();
    let truth_s = platforms.gpu().simulate_bag(&profiles).makespan_s();
    let us = ((truth_s * 1e6).ceil() as u64).max(1);
    truths.insert(key, us);
    us
}

/// Replays `jobs` (sorted by arrival) through `policy` on `cfg.gpus`
/// identical GPUs.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for a zero GPU count or window; prediction
/// errors from the policy propagate.
pub fn simulate(
    policy: &dyn Policy,
    ctx: &PolicyCtx,
    cfg: &SimConfig,
    jobs: &[Job],
) -> Result<SimOutcome, ServeError> {
    if cfg.gpus == 0 {
        return Err(ServeError::BadRequest(
            "need at least one GPU (k>=1)".into(),
        ));
    }
    if cfg.window == 0 {
        return Err(ServeError::BadRequest(
            "scheduling window must be at least 1".into(),
        ));
    }

    let mut pending: VecDeque<Job> = VecDeque::new();
    let mut next_arrival = 0usize;
    // Min-heap of (finish_us, seq, gpu); seq breaks ties deterministically.
    let mut completions: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut gpu_busy = vec![false; cfg.gpus];

    let mut shed = 0u64;
    let mut brownout_shed = [0u64; 3];
    let mut completed = 0u64;
    let mut busy_gpu_s = 0.0f64;
    let mut solo_completed_s = 0.0f64;
    let mut corun_sets = 0u64;
    let mut last_finish_us = 0u64;
    let latency = LogHistogram::new();
    let residuals = ResidualWindow::new();
    let mut truths: HashMap<Vec<Workload>, u64> = HashMap::new();

    loop {
        let next_arrival_us = jobs.get(next_arrival).map(|j| j.arrival_us);
        let next_finish_us = completions.peek().map(|Reverse((t, _, _))| *t);
        let now = match (next_arrival_us, next_finish_us) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(f)) => f,
            (Some(a), Some(f)) => a.min(f),
        };

        while let Some(&Reverse((finish, _, gpu))) = completions.peek() {
            if finish > now {
                break;
            }
            completions.pop();
            gpu_busy[gpu] = false;
        }
        while next_arrival < jobs.len() && jobs[next_arrival].arrival_us <= now {
            let job = jobs[next_arrival];
            next_arrival += 1;
            // Priority brownout at admission: under queue pressure a
            // class sheds once the depth crosses its watermark, exactly
            // as the serving engine's enqueue path does.
            if let Some(limit) = cfg.brownout_limit(job.priority) {
                if pending.len() >= limit {
                    shed += 1;
                    brownout_shed[job.priority.index()] += 1;
                    continue;
                }
            }
            pending.push_back(job);
        }
        pending.retain(|job| {
            let expired = job.deadline_us < now;
            if expired {
                shed += 1;
            }
            !expired
        });

        // Scheduling rounds: repeat while the policy makes progress.
        loop {
            let idle: Vec<usize> = (0..cfg.gpus).filter(|&g| !gpu_busy[g]).collect();
            if idle.is_empty() || pending.is_empty() {
                break;
            }
            let window: Vec<_> = pending
                .iter()
                .take(cfg.window)
                .map(|j| j.workload)
                .collect();
            let window_len = window.len();
            let placement = policy.place(ctx, idle.len(), &window)?;

            if placement.admitted() == 0 {
                if idle.len() == cfg.gpus {
                    // Every GPU is free and the policy still cannot place
                    // a single window job — those jobs can never run
                    // under this budget. Shed them so the queue drains.
                    for _ in 0..window_len {
                        pending.pop_front();
                        shed += 1;
                    }
                    continue;
                }
                break; // wait for a completion to free capacity
            }

            for (slot, assignment) in placement
                .gpus
                .iter()
                .filter(|a| !a.apps.is_empty())
                .enumerate()
            {
                let gpu = idle[slot];
                let run_us = ((assignment.predicted_s * 1e6).ceil() as u64).max(1);
                // Close the loop on this dispatch: join the predicted
                // time against the ground-truth co-run simulation, as a
                // client reporting its observed runtime would.
                residuals.observe(
                    run_us,
                    true_run_us(&mut truths, ctx.platforms, &assignment.apps),
                );
                let finish = now + run_us;
                gpu_busy[gpu] = true;
                completions.push(Reverse((finish, seq, gpu)));
                seq += 1;
                busy_gpu_s += assignment.predicted_s;
                last_finish_us = last_finish_us.max(finish);
                if assignment.apps.len() >= 2 {
                    corun_sets += 1;
                }
                for &workload in &assignment.apps {
                    let pos = pending
                        .iter()
                        .position(|j| j.workload == workload)
                        .expect("placed workloads come from the pending window");
                    let job = pending.remove(pos).expect("position is in range");
                    latency.record(finish - job.arrival_us);
                    solo_completed_s += ctx.cache.app_features(workload, ctx.platforms).gpu_time_s;
                    completed += 1;
                }
            }
        }
    }

    Ok(SimOutcome {
        arrivals: jobs.len() as u64,
        completed,
        shed,
        brownout_shed,
        makespan_s: last_finish_us as f64 / 1e6,
        busy_gpu_s,
        solo_completed_s,
        corun_sets,
        latency,
        residuals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate, ArrivalConfig};
    use crate::policy::FfdPolicy;
    use crate::testutil;
    use bagpred_core::Platforms;

    fn trace() -> Vec<Job> {
        generate(&ArrivalConfig {
            duration_s: 5.0,
            ..ArrivalConfig::default()
        })
    }

    #[test]
    fn rejects_degenerate_configs() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        let jobs = trace();
        for bad in [
            SimConfig {
                gpus: 0,
                ..SimConfig::default()
            },
            SimConfig {
                window: 0,
                ..SimConfig::default()
            },
        ] {
            assert!(matches!(
                simulate(&FfdPolicy, &ctx, &bad, &jobs),
                Err(ServeError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn every_arrival_completes_or_sheds() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        let jobs = trace();
        let outcome = simulate(&FfdPolicy, &ctx, &SimConfig::default(), &jobs).expect("runs");
        assert_eq!(outcome.arrivals, jobs.len() as u64);
        assert_eq!(outcome.completed + outcome.shed, outcome.arrivals);
        assert_eq!(outcome.latency.count(), outcome.completed);
        assert!(outcome.makespan_s > 0.0);
        // Every dispatched set fed the closed loop with a ground-truth
        // outcome; the predictor is good, so the online MAPE is sane.
        assert!(outcome.residuals.matched() > 0);
        assert!(outcome.residuals.matched() <= outcome.completed);
        let mape = outcome.online_mape_percent();
        assert!(mape.is_finite() && mape >= 0.0, "mape={mape}");
    }

    #[test]
    fn hopeless_budget_sheds_everything() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 1e-9, // below any solo time: nothing can ever run
        };
        let jobs = trace();
        let outcome = simulate(&FfdPolicy, &ctx, &SimConfig::default(), &jobs).expect("runs");
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.shed, outcome.arrivals);
        assert_eq!(outcome.makespan_s, 0.0);
    }

    #[test]
    fn impatient_jobs_shed_under_an_overloaded_fleet() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        // A single GPU against the default arrival rate with millisecond
        // patience: the queue cannot drain fast enough.
        let jobs = generate(&ArrivalConfig {
            duration_s: 10.0,
            patience_s: 0.005,
            ..ArrivalConfig::default()
        });
        let outcome = simulate(
            &FfdPolicy,
            &ctx,
            &SimConfig {
                gpus: 1,
                ..SimConfig::default()
            },
            &jobs,
        )
        .expect("runs");
        assert!(outcome.shed > 0, "millisecond patience must shed");
        assert_eq!(outcome.completed + outcome.shed, outcome.arrivals);
        assert_eq!(
            outcome.brownout_shed,
            [0, 0, 0],
            "queue_capacity 0 disables brownout entirely"
        );
    }

    #[test]
    fn brownout_sheds_low_before_normal_before_high() {
        use bagpred_serve::Priority;

        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        // One GPU against the default (oversubscribed) rate with a tight
        // admission bound: the queue rides the watermarks for the whole
        // trace, so every class's shed curve is exercised.
        let jobs = generate(&ArrivalConfig {
            duration_s: 10.0,
            ..ArrivalConfig::default()
        });
        let cfg = SimConfig {
            gpus: 1,
            queue_capacity: 8,
            ..SimConfig::default()
        };
        let outcome = simulate(&FfdPolicy, &ctx, &cfg, &jobs).expect("runs");
        assert_eq!(outcome.completed + outcome.shed, outcome.arrivals);
        let arrivals_by_class = jobs.iter().fold([0u64; 3], |mut acc, job| {
            acc[job.priority.index()] += 1;
            acc
        });
        // Every class is present in the trace and the brownout bit.
        for (i, prio) in Priority::ALL.iter().enumerate() {
            assert!(
                arrivals_by_class[i] > 0,
                "{} missing from trace",
                prio.name()
            );
        }
        let rate = |prio: Priority| {
            outcome.brownout_shed[prio.index()] as f64 / arrivals_by_class[prio.index()] as f64
        };
        // The watermark ladder: a lower class never sheds at a lower
        // rate than the class above it, and low genuinely sheds.
        assert!(
            outcome.brownout_shed[Priority::Low.index()] > 0,
            "an oversubscribed GPU with capacity 8 must brown out low"
        );
        assert!(
            rate(Priority::Low) >= rate(Priority::Normal),
            "low {} < normal {}",
            rate(Priority::Low),
            rate(Priority::Normal)
        );
        assert!(
            rate(Priority::Normal) >= rate(Priority::High),
            "normal {} < high {}",
            rate(Priority::Normal),
            rate(Priority::High)
        );
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let model = testutil::nbag_model();
        let cache = testutil::shared_cache();
        let platforms = Platforms::paper();
        let ctx = PolicyCtx {
            model: &model,
            cache,
            platforms: &platforms,
            budget_s: 0.5,
        };
        let jobs = trace();
        // Brownout on, so the determinism contract covers the priority
        // admission path too.
        let cfg = SimConfig {
            queue_capacity: 16,
            ..SimConfig::default()
        };
        let a = simulate(&FfdPolicy, &ctx, &cfg, &jobs).expect("runs");
        let b = simulate(&FfdPolicy, &ctx, &cfg, &jobs).expect("runs");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.brownout_shed, b.brownout_shed);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.busy_gpu_s.to_bits(), b.busy_gpu_s.to_bits());
        assert_eq!(a.latency.snapshot(), b.latency.snapshot());
        assert_eq!(
            a.online_mape_percent().to_bits(),
            b.online_mape_percent().to_bits(),
            "the closed loop is part of the determinism contract"
        );
        assert_eq!(a.residuals.snapshot(), b.residuals.snapshot());
    }
}
