//! Pluggable scheduling policies for the fleet simulator.
//!
//! A [`Policy`] answers one question per scheduling round: given `m` idle
//! GPUs and a FIFO window of queued workloads, which co-run sets go where?
//! Answers reuse the serving layer's [`Placement`] shape, so the two
//! production policies are thin delegations to `serve::admission::place`,
//! and the [`Exhaustive`] comparator brute-forces the same decision for
//! small windows to expose how much the greedy heuristics leave on the
//! table.

use bagpred_core::nbag::MAX_BAG;
use bagpred_core::Platforms;
use bagpred_serve::admission::{place, predict_corun, AdmissionPolicy};
use bagpred_serve::cache::FeatureCache;
use bagpred_serve::error::ServeError;
use bagpred_serve::snapshot::ServableModel;
use bagpred_serve::Placement;
use bagpred_workloads::Workload;

/// Everything a policy needs to price a candidate co-run.
pub struct PolicyCtx<'a> {
    /// The servable predictor (pair or n-bag).
    pub model: &'a ServableModel,
    /// Shared feature/profile/measurement cache.
    pub cache: &'a FeatureCache,
    /// Simulated CPU + GPU platforms.
    pub platforms: &'a Platforms,
    /// Per-GPU predicted-latency budget, seconds.
    pub budget_s: f64,
}

impl PolicyCtx<'_> {
    /// Predicted time of one co-run set under this context's model.
    pub fn predict(&self, apps: &[Workload]) -> Result<f64, ServeError> {
        predict_corun(self.model, self.cache, self.platforms, apps)
    }

    /// Bag capacity of the context's model (2 for pair, [`MAX_BAG`] for
    /// n-bag).
    pub fn capacity(&self) -> usize {
        match self.model {
            ServableModel::Pair(_) => 2,
            ServableModel::NBag(_) => MAX_BAG,
        }
    }
}

/// One scheduling decision per round of the simulator.
pub trait Policy {
    /// Stable lowercase name used in reports and CLI flags.
    fn name(&self) -> &'static str;

    /// Assigns workloads from `window` onto `gpus` idle GPUs.
    ///
    /// Returned assignments must respect the model's bag capacity and
    /// `ctx.budget_s`; workloads in `rejected` stay queued (the simulator
    /// retries them next round — rejection is *waiting*, not loss).
    fn place(
        &self,
        ctx: &PolicyCtx,
        gpus: usize,
        window: &[Workload],
    ) -> Result<Placement, ServeError>;
}

/// Today's production policy: first-fit-decreasing under the budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct FfdPolicy;

impl Policy for FfdPolicy {
    fn name(&self) -> &'static str {
        "ffd"
    }

    fn place(
        &self,
        ctx: &PolicyCtx,
        gpus: usize,
        window: &[Workload],
    ) -> Result<Placement, ServeError> {
        place(
            ctx.model,
            ctx.cache,
            ctx.platforms,
            gpus,
            ctx.budget_s,
            window,
            AdmissionPolicy::Ffd,
        )
    }
}

/// FFD that refuses co-runs predicted slower than serialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloFallbackPolicy;

impl Policy for SoloFallbackPolicy {
    fn name(&self) -> &'static str {
        "solo"
    }

    fn place(
        &self,
        ctx: &PolicyCtx,
        gpus: usize,
        window: &[Workload],
    ) -> Result<Placement, ServeError> {
        place(
            ctx.model,
            ctx.cache,
            ctx.platforms,
            gpus,
            ctx.budget_s,
            window,
            AdmissionPolicy::SoloFallback,
        )
    }
}

/// Brute-force comparator: enumerates every assignment of the window
/// (capped at [`Exhaustive::max_window`] jobs) onto the idle GPUs —
/// including leaving jobs queued — and keeps the assignment minimizing
/// the classic clear-time lower bound `max(longest block, total work /
/// m)`, where total work is Σ predicted block times plus Σ solo times of
/// jobs left queued (they run eventually either way). Ties prefer less
/// total work, then more jobs placed, then the *larger* round makespan —
/// the longest-processing-time rule: drain the heavy jobs first and the
/// tail stays short. A co-run is only ever chosen when it beats
/// serializing its members. Exponential in the window, so only sane for
/// small instances; it is the optimality yardstick, not a production
/// policy.
#[derive(Debug, Clone, Copy)]
pub struct Exhaustive {
    /// Largest window the search will consider (tail stays queued).
    pub max_window: usize,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self { max_window: 6 }
    }
}

/// Sentinel for "left in the queue" in the search's assignment vector.
const UNPLACED: usize = usize::MAX;

struct Search<'a, 'b> {
    ctx: &'a PolicyCtx<'b>,
    capacity: usize,
    gpus: usize,
    jobs: &'a [Workload],
    assign: Vec<usize>,
    counts: Vec<usize>,
    best: Option<Best>,
}

struct Best {
    score_s: f64,
    work_s: f64,
    placed: usize,
    makespan_s: f64,
    assign: Vec<usize>,
}

impl Search<'_, '_> {
    fn go(&mut self, idx: usize, used: usize) -> Result<(), ServeError> {
        if idx == self.jobs.len() {
            return self.evaluate();
        }
        // GPUs are identical, so only the first empty one is worth
        // opening — classic symmetry break.
        let limit = (used + 1).min(self.gpus);
        for g in 0..limit {
            if self.counts[g] >= self.capacity {
                continue;
            }
            self.assign[idx] = g;
            self.counts[g] += 1;
            self.go(idx + 1, used.max(g + 1))?;
            self.counts[g] -= 1;
        }
        self.assign[idx] = UNPLACED;
        self.go(idx + 1, used)
    }

    fn evaluate(&mut self) -> Result<(), ServeError> {
        let mut sets: Vec<Vec<Workload>> = vec![Vec::new(); self.gpus];
        for (i, &g) in self.assign.iter().enumerate() {
            if g != UNPLACED {
                sets[g].push(self.jobs[i]);
            }
        }
        let mut placed = 0usize;
        let mut makespan_s = 0.0f64;
        let mut work_s = 0.0f64;
        for set in sets.iter().filter(|s| !s.is_empty()) {
            let predicted = self.ctx.predict(set)?;
            if predicted > self.ctx.budget_s {
                return Ok(()); // infeasible leaf
            }
            placed += set.len();
            makespan_s = makespan_s.max(predicted);
            work_s += predicted;
        }
        // Unplaced jobs will run eventually; charge them at solo cost,
        // and no schedule clears the window before the longest of them.
        let mut tail_s = 0.0f64;
        for (i, &g) in self.assign.iter().enumerate() {
            if g == UNPLACED {
                let solo = self.ctx.predict(&self.jobs[i..=i])?;
                work_s += solo;
                tail_s = tail_s.max(solo);
            }
        }
        // Clear-time lower bound for this round's choice: no schedule of
        // this work on m GPUs finishes before the longest block, the
        // longest deferred job, or the perfectly balanced share.
        let score_s = makespan_s.max(tail_s).max(work_s / self.gpus as f64);
        let better = match &self.best {
            None => true,
            Some(b) => {
                score_s < b.score_s
                    || (score_s == b.score_s
                        && (work_s < b.work_s
                            || (work_s == b.work_s
                                && (placed > b.placed
                                    || (placed == b.placed && makespan_s > b.makespan_s)))))
            }
        };
        if better {
            self.best = Some(Best {
                score_s,
                work_s,
                placed,
                makespan_s,
                assign: self.assign.clone(),
            });
        }
        Ok(())
    }
}

impl Policy for Exhaustive {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn place(
        &self,
        ctx: &PolicyCtx,
        gpus: usize,
        window: &[Workload],
    ) -> Result<Placement, ServeError> {
        if gpus == 0 {
            return Err(ServeError::BadRequest(
                "need at least one GPU (k>=1)".into(),
            ));
        }
        let take = window.len().min(self.max_window);
        let (head, tail) = window.split_at(take);
        let mut search = Search {
            ctx,
            capacity: ctx.capacity(),
            gpus,
            jobs: head,
            assign: vec![UNPLACED; head.len()],
            counts: vec![0; gpus],
            best: None,
        };
        search.go(0, 0)?;
        // The all-unplaced leaf is always feasible, so a best exists.
        let best = search.best.expect("search visits the empty assignment");

        let mut assignments: Vec<bagpred_serve::GpuAssignment> = (0..gpus)
            .map(|_| bagpred_serve::GpuAssignment {
                apps: Vec::new(),
                predicted_s: 0.0,
            })
            .collect();
        let mut rejected = Vec::new();
        for (i, &g) in best.assign.iter().enumerate() {
            if g == UNPLACED {
                rejected.push(head[i]);
            } else {
                assignments[g].apps.push(head[i]);
            }
        }
        for assignment in assignments.iter_mut().filter(|a| !a.apps.is_empty()) {
            assignment.predicted_s = ctx.predict(&assignment.apps)?;
        }
        rejected.extend_from_slice(tail);
        Ok(Placement {
            gpus: assignments,
            rejected,
        })
    }
}

/// Looks a policy up by its stable name (`ffd`, `solo`, `optimal`).
pub fn by_name(name: &str) -> Option<Box<dyn Policy>> {
    match name {
        "ffd" => Some(Box::new(FfdPolicy)),
        "solo" => Some(Box::new(SoloFallbackPolicy)),
        "optimal" => Some(Box::new(Exhaustive::default())),
        _ => None,
    }
}

/// The production policies every report sweeps.
pub fn standard() -> Vec<Box<dyn Policy>> {
    vec![Box::new(FfdPolicy), Box::new(SoloFallbackPolicy)]
}
