//! Same seed + config ⇒ byte-identical report.
//!
//! This is the contract `repro fleet --json` advertises and the one the
//! capacity-planning trajectory in `BENCH_fleet.json` depends on: any
//! accidental HashMap iteration, wall-clock read, or float
//! non-determinism in the simulator shows up here as a byte diff.

use bagpred_core::Platforms;
use bagpred_fleet::{ArrivalConfig, FleetConfig, GapConfig};
use bagpred_serve::bootstrap;
use bagpred_serve::cache::FeatureCache;
use bagpred_serve::snapshot::ServableModel;
use std::sync::{Arc, OnceLock};

/// Training dominates this binary; do it once for both tests.
fn nbag_model() -> Arc<ServableModel> {
    static MODEL: OnceLock<Arc<ServableModel>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        bootstrap::default_registry(&Platforms::paper())
            .get(bootstrap::NBAG_MODEL)
            .expect("bootstrapped")
    }))
}

fn smoke_config(seed: u64) -> FleetConfig {
    FleetConfig {
        arrivals: ArrivalConfig {
            duration_s: 5.0,
            seed,
            ..ArrivalConfig::default()
        },
        gpu_sweep: vec![1, 2],
        gap: Some(GapConfig {
            instances: 2,
            jobs: 4,
            ..GapConfig::default()
        }),
        smoke: true,
        ..FleetConfig::default()
    }
}

#[test]
fn same_seed_same_bytes() {
    let platforms = Platforms::paper();
    let model = nbag_model();
    let cfg = smoke_config(42);

    // Fresh cache per run: the report must not depend on cache warmth.
    let first = bagpred_fleet::run_with(&model, &FeatureCache::new(), &platforms, &cfg)
        .expect("first run")
        .to_json();
    let second = bagpred_fleet::run_with(&model, &FeatureCache::new(), &platforms, &cfg)
        .expect("second run")
        .to_json();
    assert_eq!(first, second, "same seed + config must be byte-identical");

    assert!(first.contains("\"schema\": \"bagpred-fleet-v1\""));
    for key in [
        "\"arrivals\":",
        "\"ffd_k1_shed_rate\":",
        "\"ffd_k2_p50_ms\":",
        "\"ffd_k2_p99_ms\":",
        "\"solo_k2_packing_efficiency\":",
        "\"gap_instances\":",
        "\"ffd_gap_max_percent\":",
        "\"solo_gap_mean_percent\":",
        "\"optimal_gap_mean_percent\":",
    ] {
        assert!(first.contains(key), "report is missing {key}:\n{first}");
    }
}

#[test]
fn different_seed_different_bytes() {
    let platforms = Platforms::paper();
    let model = nbag_model();

    let a = bagpred_fleet::run_with(&model, &FeatureCache::new(), &platforms, &smoke_config(42))
        .expect("seed 42")
        .to_json();
    let b = bagpred_fleet::run_with(
        &model,
        &FeatureCache::new(),
        &platforms,
        &smoke_config(1042),
    )
    .expect("seed 1042")
    .to_json();
    assert_ne!(a, b, "different seeds must produce different traces");
}
