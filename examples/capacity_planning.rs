//! Capacity planning: how does interference change on a different GPU?
//!
//! The predictor's substrates are parameterized machine models, so a
//! downstream user can ask what-if questions the paper's testbed could not:
//! here we re-measure single-instance and two-way co-run times for every
//! benchmark on the baseline Tesla T4 and on a hypothetical half-size
//! device, and show how the co-run slowdown shifts when compute becomes
//! scarcer.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use bagpred::gpusim::{GpuConfig, GpuSimulator};
use bagpred::workloads::{Benchmark, Workload, STANDARD_BATCH};

fn slowdown_table(label: &str, gpu: &GpuSimulator) {
    println!("\n== {label} ==");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "benchmark", "solo", "2-way", "slowdown"
    );
    for bench in Benchmark::ALL {
        let profile = Workload::new(bench, STANDARD_BATCH).profile();
        let solo = gpu.simulate(&profile).time_s;
        let bag = gpu.simulate_bag(&[profile.clone(), profile]);
        let shared = bag.per_app()[0].time_s;
        println!(
            "{:<10} {:>10.2}ms {:>10.2}ms {:>9.2}x",
            bench.name(),
            solo * 1e3,
            shared * 1e3,
            shared / solo
        );
    }
}

fn main() {
    let t4 = GpuSimulator::new(GpuConfig::tesla_t4());
    slowdown_table("NVIDIA Tesla T4 (baseline, Table III)", &t4);

    // A hypothetical edge device: half the SMs, half the bandwidth,
    // same clocks — the kind of capacity question an edge operator asks.
    let half = GpuSimulator::new(
        GpuConfig::builder()
            .sms(20)
            .dram_bandwidth(160e9)
            .l2_bytes(2 * 1024 * 1024)
            .build(),
    );
    slowdown_table("hypothetical half-size device", &half);

    println!(
        "\nReading: on the smaller device single-instance times grow and \
         co-run slowdowns worsen where occupancy or bandwidth saturate — \
         the destructive-interference terms compound with scarcer capacity."
    );
}
