//! Forecasting bags of more than two applications — the paper's open
//! problem, answered with the order-statistic aggregation extension.
//!
//! Trains the n-bag predictor on a mixed-size corpus (bags of 2-4) and
//! forecasts the makespan of a fresh four-application ensemble, comparing
//! prediction against the simulator's ground truth and against the naive
//! "sum of solo times" and "max solo × n" heuristics.
//!
//! ```text
//! cargo run --example nbag_forecast
//! ```

use bagpred::core::nbag::{nbag_corpus, NBag, NBagMeasurement, NBagPredictor};
use bagpred::core::Platforms;
use bagpred::workloads::{Benchmark, Workload};

fn main() {
    let platforms = Platforms::paper();

    println!("measuring the mixed-size training corpus (bags of 2-4)...");
    let records: Vec<NBagMeasurement> = nbag_corpus(24)
        .into_iter()
        .map(|bag| NBagMeasurement::collect(bag, &platforms))
        .collect();
    println!("  {} bags measured", records.len());

    let mut predictor = NBagPredictor::new();
    predictor.train(&records);
    println!(
        "  in-sample mean relative error: {:.1}%",
        predictor.evaluate(&records)
    );

    // A fresh 4-app ensemble at a batch size whose heterogeneous combinations the corpus never saw.
    let bag = NBag::new(vec![
        Workload::new(Benchmark::Sift, 40),
        Workload::new(Benchmark::FaceDet, 40),
        Workload::new(Benchmark::Knn, 40),
        Workload::new(Benchmark::Svm, 40),
    ]);
    println!("\nforecasting: {}", bag.label());
    let measured = NBagMeasurement::collect(bag.clone(), &platforms);

    let predicted = predictor.predict(&measured);
    let truth = measured.bag_gpu_time_s();

    // Naive baselines.
    let solos: Vec<f64> = bag
        .members()
        .iter()
        .map(|w| platforms.gpu().simulate(&w.profile()).time_s)
        .collect();
    let sum_solo: f64 = solos.iter().sum();
    let max_times_n = solos.iter().cloned().fold(0.0f64, f64::max) * bag.len() as f64;

    let err = |v: f64| ((truth - v) / truth).abs() * 100.0;
    println!("  ground truth (simulator): {:8.2} ms", truth * 1e3);
    println!(
        "  n-bag predictor:          {:8.2} ms   ({:.1}% error)",
        predicted * 1e3,
        err(predicted)
    );
    println!(
        "  naive sum-of-solos:       {:8.2} ms   ({:.1}% error)",
        sum_solo * 1e3,
        err(sum_solo)
    );
    println!(
        "  naive max-solo x n:       {:8.2} ms   ({:.1}% error)",
        max_times_n * 1e3,
        err(max_times_n)
    );
    println!("  ensemble fairness:        {:8.3}", measured.fairness());
}
