//! Feature-scheme ablation: which features earn their place?
//!
//! Reproduces the spirit of the paper's §VI-B sensitivity study from the
//! library API: evaluates a ladder of feature schemes with
//! leave-one-benchmark-out cross-validation and prints how each added
//! feature group moves the error, alongside the model-choice comparison
//! (decision tree vs. SVR vs. linear regression) from §V-D.
//!
//! ```text
//! cargo run --example feature_ablation
//! ```

use bagpred::core::{Corpus, Feature, FeatureSet, ModelKind, Predictor};

fn main() {
    println!("measuring the 91-run corpus...");
    let records = Corpus::paper().measure();

    println!("\n== feature ladder (LOOCV mean relative error) ==\n");
    let ladder = [
        FeatureSet::insmix(),
        FeatureSet::insmix().with(Feature::CpuTime),
        FeatureSet::insmix()
            .with(Feature::CpuTime)
            .with(Feature::Fairness),
        FeatureSet::insmix()
            .with(Feature::CpuTime)
            .with(Feature::GpuTime),
        FeatureSet::full(),
    ];
    let mut previous: Option<f64> = None;
    for scheme in ladder {
        let mut predictor = Predictor::new(scheme.clone());
        let error = predictor.loocv_by_benchmark(&records).mean_error_percent();
        let delta = previous.map_or(String::new(), |p| {
            format!("  ({:+.1} vs previous)", error - p)
        });
        println!("{:<40} {:>8.2}%{delta}", scheme.name(), error);
        previous = Some(error);
    }

    println!("\n== model choice on the full feature set (80/20 split) ==\n");
    for (kind, label) in [
        (
            ModelKind::DecisionTree,
            "decision tree (the paper's choice)",
        ),
        (ModelKind::Svr, "support-vector regression"),
        (ModelKind::Linear, "linear regression"),
    ] {
        let mut predictor = Predictor::new(FeatureSet::full()).with_model(kind);
        let error = predictor.train_test_error(&records, 2020);
        println!("{label:<38} {error:>8.2}%");
    }

    println!(
        "\nThe paper's conclusions hold: GPU time is the most valuable \
         feature, fairness rescues time-less schemes, and the simple \
         decision tree beats the fancier regressors on this sparse corpus."
    );
}
