//! Online serving: train once, snapshot, serve concurrent clients.
//!
//! Walks the whole serving stack end to end: train the pair and n-bag
//! models, snapshot them to disk and restore a bit-identical registry,
//! start the prediction engine, spin up the TCP front-end on an
//! ephemeral port, and fire concurrent clients at it — then compare a
//! cold-cache request against a warm one and print the service stats.
//!
//! ```text
//! cargo run --example serving
//! ```

use bagpred::core::Platforms;
use bagpred::serve::{
    bootstrap, Client, ModelRegistry, PredictionService, Reply, Request, Server, ServiceConfig,
};
use bagpred::workloads::{Benchmark, Workload};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // 1. Train once, snapshot, and reload — the registry a production
    //    boot would read instead of re-measuring the corpus.
    println!("training pair + n-bag models on the paper corpus...");
    let trained = bootstrap::default_registry(&Platforms::paper());
    let dir = std::env::temp_dir().join(format!("bagpred-serving-example-{}", std::process::id()));
    trained.save_dir(&dir).expect("snapshots save");
    let registry = Arc::new(ModelRegistry::new());
    registry.load_dir(&dir).expect("snapshots load");
    std::fs::remove_dir_all(&dir).ok();
    println!("restored {} models from snapshots:", registry.len());
    for (name, desc) in registry.list() {
        println!("  {name:<12} {desc}");
    }

    // 2. Start the engine and the TCP front-end on an ephemeral port.
    let service = PredictionService::start(registry, Platforms::paper(), ServiceConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();
    println!("\nserving on {addr}");

    // 3. Concurrent clients, each speaking the line protocol.
    let bags = [
        "SIFT@20+KNN@40",
        "HoG@20+FAST@80",
        "ORB@40+SURF@40",
        "SVM@20+OBJREC@20",
        "SIFT@20+KNN@40+ORB@40",
    ];
    let handles: Vec<_> = bags
        .iter()
        .map(|bag| {
            let line = format!("predict {bag}");
            // `Client` retries `err overloaded`/`err internal` with
            // jittered exponential backoff — under load shedding or an
            // injected worker panic these requests would still land.
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let reply = client.request(&line).expect("request succeeds");
                (reply, client.retries())
            })
        })
        .collect();
    println!("\nconcurrent clients (retry-aware):");
    for (bag, handle) in bags.iter().zip(handles) {
        let (reply, retries) = handle.join().expect("client finishes");
        let note = if retries > 0 {
            format!("  [{retries} retries]")
        } else {
            String::new()
        };
        println!("  {bag:<24} -> {reply}{note}");
    }
    // `health` is the probe a load balancer would hit: per-model
    // panic/quarantine state, no admin needed.
    let mut probe = Client::new(addr);
    println!(
        "  health                   -> {}",
        probe.request("health").expect("health")
    );

    // 4. Cold vs warm: the feature cache pays for itself on the second
    //    request for the same bag.
    let fresh = Request::Predict {
        model: None,
        apps: vec![
            Workload::new(Benchmark::FaceDet, 33),
            Workload::new(Benchmark::Svm, 77),
        ],
    };
    let t0 = Instant::now();
    service.call(fresh.clone()).expect("cold predict");
    let cold = t0.elapsed();
    let t1 = Instant::now();
    service.call(fresh).expect("warm predict");
    let warm = t1.elapsed();
    println!("\ncold request: {cold:>10.2?}   warm request: {warm:>10.2?}");

    // 5. Admission control + stats over the same engine.
    let schedule = Request::Schedule {
        model: None,
        gpus: 2,
        budget_s: 0.5,
        apps: Benchmark::ALL
            .into_iter()
            .map(|b| Workload::new(b, 20))
            .collect(),
    };
    if let Ok(Reply::Schedule(placement)) = service.call(schedule) {
        println!("\nadmission (k=2, budget 0.5s):");
        for (idx, gpu) in placement.gpus.iter().enumerate() {
            let names: Vec<String> = gpu
                .apps
                .iter()
                .map(|w| format!("{}@{}", w.benchmark().name(), w.batch_size()))
                .collect();
            println!(
                "  gpu{idx}: {:<40} predicted {:.3}s",
                names.join("+"),
                gpu.predicted_s
            );
        }
        println!("  rejected: {}", placement.rejected.len());
    }
    if let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) {
        println!(
            "\nstats: {} requests, cache hit rate {:.0}%, \
             latency p50 {}us p95 {}us p99 {}us \
             (queue wait p95 {}us, service p95 {}us)",
            stats.metrics.received,
            stats.cache_hit_rate * 100.0,
            stats.metrics.latency.p50_us,
            stats.metrics.latency.p95_us,
            stats.metrics.latency.p99_us,
            stats.metrics.queue_wait.p95_us,
            stats.metrics.service.p95_us,
        );
    }
    // Per-model accounting: every registered model has its own counters
    // and queue-wait/service-time histograms.
    for (name, _) in service.registry().list() {
        if let Ok(Reply::ModelStats {
            model,
            metrics,
            shard,
        }) = service.call(Request::Stats { model: Some(name) })
        {
            let shard_wait = shard.map_or(0, |s| s.queue_wait.p95_us);
            println!(
                "  {model:<12} {} requests, {} ok, {} err, shard queue wait p95 {}us",
                metrics.received, metrics.succeeded, metrics.failed, shard_wait
            );
        }
    }

    // The same numbers as a Prometheus scrape (first lines shown); a
    // `MetricsServer` can serve this over HTTP next to the line protocol.
    let exposition = service.exposition();
    println!(
        "\nmetrics exposition ({} lines):",
        exposition.lines().count()
    );
    for line in exposition.lines().take(5) {
        println!("  {line}");
    }
    println!("  ...");

    // 6. Drain: shutdown joins every connection thread, so nothing leaks.
    let mut server = server;
    server.shutdown();
    println!(
        "\ndrained: {} active connections",
        server.active_connections()
    );
    service.shutdown();
}
