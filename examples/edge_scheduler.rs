//! Edge-server admission control driven by the predictor.
//!
//! The paper's motivation: an edge/cloud GPU server receives offloaded
//! vision jobs and must decide how to co-schedule them. The solo-fallback
//! logic this example originally sketched — co-run two jobs only when the
//! predicted co-run beats running them back-to-back — is now a first-class
//! serving policy (`AdmissionPolicy::SoloFallback`), so the example
//! delegates to `serve::admission::place` and contrasts both policies on
//! the same queue.
//!
//! ```text
//! cargo run --example edge_scheduler
//! ```

use bagpred::core::Platforms;
use bagpred::serve::admission::{place, predict_corun, AdmissionPolicy};
use bagpred::serve::{bootstrap, FeatureCache};
use bagpred::workloads::{Benchmark, Workload};

fn main() {
    println!("training the co-run predictors (pair + n-bag)...");
    let platforms = Platforms::paper();
    let registry = bootstrap::default_registry(&platforms);
    let model = registry.get(bootstrap::NBAG_MODEL).expect("bootstrapped");
    let cache = FeatureCache::new();

    // The incoming job queue: a mix of offloaded vision pipelines.
    let queue = [
        (
            "feature extraction (SIFT)",
            Workload::new(Benchmark::Sift, 40),
        ),
        ("face detection", Workload::new(Benchmark::FaceDet, 40)),
        ("classification (KNN)", Workload::new(Benchmark::Knn, 40)),
        ("model training (SVM)", Workload::new(Benchmark::Svm, 40)),
    ];
    let apps: Vec<Workload> = queue.iter().map(|&(_, w)| w).collect();
    let name_of = |w: &Workload| {
        queue
            .iter()
            .find(|(_, q)| q == w)
            .map(|&(n, _)| n)
            .unwrap_or("?")
    };

    println!("\npairing economics (predicted co-run vs. sequential):\n");
    println!(
        "{:<28} {:<28} {:>10} {:>10} {:>9}",
        "job A", "job B", "co-run", "sequential", "verdict"
    );
    for i in 0..apps.len() {
        for j in i + 1..apps.len() {
            let pair = [apps[i], apps[j]];
            let corun = predict_corun(&model, &cache, &platforms, &pair).expect("predicts");
            let sequential: f64 = pair
                .iter()
                .map(|&w| cache.app_features(w, &platforms).gpu_time_s)
                .sum();
            println!(
                "{:<28} {:<28} {:>8.2}ms {:>8.2}ms {:>9}",
                queue[i].0,
                queue[j].0,
                corun * 1e3,
                sequential * 1e3,
                if corun < sequential {
                    "co-run"
                } else {
                    "serialize"
                }
            );
        }
    }

    // Two GPUs, generous latency budget: let the policies speak.
    for policy in [AdmissionPolicy::Ffd, AdmissionPolicy::SoloFallback] {
        let placement = place(&model, &cache, &platforms, 2, 10.0, &apps, policy).expect("places");
        println!("\npolicy `{}` on 2 GPUs:", policy.name());
        for (idx, gpu) in placement.gpus.iter().enumerate() {
            if gpu.apps.is_empty() {
                println!("  gpu{idx}: idle");
            } else {
                let names: Vec<&str> = gpu.apps.iter().map(&name_of).collect();
                println!(
                    "  gpu{idx}: {} (predicted {:.2} ms)",
                    names.join(" + "),
                    gpu.predicted_s * 1e3
                );
            }
        }
        for w in &placement.rejected {
            println!("  queued for a later solo slot: {}", name_of(w));
        }
    }

    println!(
        "\nThe solo-fallback policy is the paper's own conclusion: with MPS on \
         current GPUs, destructive interference often makes co-runs slower than \
         back-to-back execution — which is exactly why predicting the loss \
         *before* admitting a bag matters."
    );
}
