//! Edge-server admission control driven by the predictor.
//!
//! The paper's motivation: an edge/cloud GPU server receives offloaded
//! vision jobs and must decide how to co-schedule them. This example builds
//! a small scheduler that, for every pair of queued jobs, predicts the
//! co-run makespan and compares it against running the jobs back-to-back —
//! admitting the pairing only when concurrency actually pays off.
//!
//! ```text
//! cargo run --example edge_scheduler
//! ```

use bagpred::core::{Bag, Corpus, FeatureSet, Measurement, Platforms, Predictor};
use bagpred::workloads::{Benchmark, Workload};

/// A queued inference job.
struct Job {
    name: &'static str,
    workload: Workload,
}

fn main() {
    println!("training the co-run predictor...");
    let platforms = Platforms::paper();
    let records = Corpus::paper().measure_on(&platforms);
    let mut predictor = Predictor::new(FeatureSet::full());
    predictor.train(&records);

    // The incoming job queue: a mix of offloaded vision pipelines.
    let queue = [
        Job {
            name: "feature extraction (SIFT)",
            workload: Workload::new(Benchmark::Sift, 40),
        },
        Job {
            name: "face detection",
            workload: Workload::new(Benchmark::FaceDet, 40),
        },
        Job {
            name: "classification (KNN)",
            workload: Workload::new(Benchmark::Knn, 40),
        },
        Job {
            name: "model training (SVM)",
            workload: Workload::new(Benchmark::Svm, 40),
        },
    ];

    println!("\npairing decisions (predicted co-run vs. sequential):\n");
    println!(
        "{:<28} {:<28} {:>10} {:>10} {:>9}",
        "job A", "job B", "co-run", "sequential", "decision"
    );

    let gpu = platforms.gpu();
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..queue.len() {
        for j in i + 1..queue.len() {
            let bag = Bag::pair(queue[i].workload, queue[j].workload);
            let measured = Measurement::collect(bag, &platforms);
            let corun = predictor.predict(&measured);

            // Sequential alternative: one after the other, each alone.
            let solo_a = gpu.simulate(&queue[i].workload.profile()).time_s;
            let solo_b = gpu.simulate(&queue[j].workload.profile()).time_s;
            let sequential = solo_a + solo_b;

            let admit = corun < sequential;
            println!(
                "{:<28} {:<28} {:>8.2}ms {:>8.2}ms {:>9}",
                queue[i].name,
                queue[j].name,
                corun * 1e3,
                sequential * 1e3,
                if admit { "co-run" } else { "serialize" }
            );
            if admit {
                let saving = sequential - corun;
                if best.is_none_or(|(_, _, s)| saving > s) {
                    best = Some((i, j, saving));
                }
            }
        }
    }

    match best {
        Some((i, j, saving)) => println!(
            "\nscheduler picks: co-run \"{}\" with \"{}\" (predicted saving {:.2} ms)",
            queue[i].name,
            queue[j].name,
            saving * 1e3
        ),
        None => println!(
            "\nscheduler picks: run everything sequentially.\n\
             (This is the paper's own conclusion: with MPS on current GPUs, \
             destructive interference makes two-way co-runs slower than \
             back-to-back execution — which is exactly why predicting the \
             loss *before* admitting a bag matters.)"
        ),
    }
}
