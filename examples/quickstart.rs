//! Quickstart: train the predictor on the paper's corpus and predict the
//! GPU makespan of a new bag of applications.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bagpred::core::{Bag, Corpus, FeatureSet, Measurement, Platforms, Predictor};
use bagpred::workloads::{Benchmark, Workload};

fn main() {
    // 1. Measure the paper's 91-run corpus (homogeneous + heterogeneous
    //    bags of two, five batch sizes). This profiles every workload and
    //    runs the CPU/GPU timing models; a few seconds.
    println!("measuring the 91-run training corpus...");
    let platforms = Platforms::paper();
    let records = Corpus::paper().measure_on(&platforms);

    // 2. Train the decision-tree predictor on the full Table IV feature
    //    set: CPU time, single-instance GPU time, instruction mix, fairness.
    let mut predictor = Predictor::new(FeatureSet::full());
    predictor.train(&records);
    println!(
        "trained on {} bags; training error {:.2}%",
        records.len(),
        predictor.evaluate(&records)
    );

    // 3. Predict a bag the training recipe never saw: SIFT and KNN at a
    //    batch size of 60 images.
    let bag = Bag::pair(
        Workload::new(Benchmark::Sift, 60),
        Workload::new(Benchmark::Knn, 60),
    );
    let measured = Measurement::collect(bag, &platforms);
    let predicted = predictor.predict(&measured);
    let actual = measured.bag_gpu_time_s();

    println!("\nbag: {}", measured.bag());
    println!(
        "  single-instance GPU times: {:.2} ms / {:.2} ms",
        measured.apps()[0].gpu_time_s * 1e3,
        measured.apps()[1].gpu_time_s * 1e3
    );
    println!("  fairness (Eq. 2):          {:.3}", measured.fairness());
    println!("  predicted bag makespan:    {:.2} ms", predicted * 1e3);
    println!("  measured bag makespan:     {:.2} ms", actual * 1e3);
    println!(
        "  relative error:            {:.1}%",
        ((actual - predicted) / actual).abs() * 100.0
    );
}
