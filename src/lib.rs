//! **bagpred** — performance prediction for multi-application concurrency on
//! GPUs.
//!
//! A complete Rust reproduction of *"Performance Prediction for
//! Multi-Application Concurrency on GPUs"* (ISPASS 2020): a decision-tree
//! predictor for the execution time of a bag of applications co-running on a
//! GPU under CUDA MPS, together with every substrate the paper's pipeline
//! depends on — the vision benchmark suite, instruction-mix profiling, CPU
//! and GPU timing models with multi-application interference, and a
//! from-scratch regression library.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof. See each module for its full documentation:
//!
//! * [`trace`] — instruction-class profiling (PIN/MICA stand-in).
//! * [`workloads`] — the nine vision kernels of Table II.
//! * [`cpusim`] — the Xeon server model + fairness measurement (Eq. 2).
//! * [`gpusim`] — the Tesla T4 model with MPS interference.
//! * [`ml`] — decision trees, linear regression, SVR, validation.
//! * [`core`] — the predictor itself: features, corpus, training, analysis.
//! * [`obs`] — observability: lock-free log-bucketed histograms, per-stage
//!   request traces, slow-request capture, Prometheus text exposition.
//! * [`experiments`] — regeneration of every table and figure.
//! * [`serve`] — online serving: model snapshots, a concurrent prediction
//!   engine with a feature cache, admission control, and a TCP front-end.
//! * [`fleet`] — trace-driven fleet scheduling simulator: diurnal arrivals
//!   replayed through the admission stack, pluggable policies, and
//!   optimality-gap / capacity-planning reports.
//!
//! # Quickstart
//!
//! ```
//! use bagpred::core::{Bag, Corpus, FeatureSet, Predictor};
//! use bagpred::workloads::{Benchmark, Workload};
//!
//! // Measure the paper's 91-run corpus and train the full-feature model.
//! let records = Corpus::paper().measure();
//! let mut predictor = Predictor::new(FeatureSet::full());
//! predictor.train(&records);
//!
//! // Predict the makespan of a new heterogeneous bag.
//! let bag = Bag::pair(
//!     Workload::new(Benchmark::Sift, 40),
//!     Workload::new(Benchmark::Knn, 40),
//! );
//! let measured = bagpred::core::Measurement::collect(bag, &bagpred::core::Platforms::paper());
//! let predicted_s = predictor.predict(&measured);
//! assert!(predicted_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bagpred_core as core;
pub use bagpred_cpusim as cpusim;
pub use bagpred_experiments as experiments;
pub use bagpred_fleet as fleet;
pub use bagpred_gpusim as gpusim;
pub use bagpred_ml as ml;
pub use bagpred_obs as obs;
pub use bagpred_serve as serve;
pub use bagpred_trace as trace;
pub use bagpred_workloads as workloads;
