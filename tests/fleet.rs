//! Integration test for the fleet simulator through the facade crate:
//! the full `run_with` sweep plus the report contract `repro fleet`
//! exposes.

use bagpred::core::Platforms;
use bagpred::fleet::{ArrivalConfig, FleetConfig, GapConfig};
use bagpred::serve::bootstrap;
use bagpred::serve::cache::FeatureCache;

#[test]
fn fleet_sweep_reports_the_capacity_planning_contract() {
    let platforms = Platforms::paper();
    let registry = bootstrap::default_registry(&platforms);
    let model = registry.get(bootstrap::NBAG_MODEL).expect("bootstrapped");
    let cache = FeatureCache::new();

    let cfg = FleetConfig {
        arrivals: ArrivalConfig {
            duration_s: 8.0,
            ..ArrivalConfig::default()
        },
        gpu_sweep: vec![1, 2],
        gap: Some(GapConfig {
            instances: 2,
            jobs: 4,
            ..GapConfig::default()
        }),
        smoke: true,
        ..FleetConfig::default()
    };
    let report = bagpred::fleet::run_with(&model, &cache, &platforms, &cfg).expect("runs");

    // Cells: 2 policies × 2 fleet sizes, each accounting for every
    // arrival and keeping its metrics in range.
    assert_eq!(report.cells.len(), 4);
    assert!(report.arrivals > 0);
    for cell in &report.cells {
        assert_eq!(cell.completed + cell.shed, report.arrivals);
        assert!((0.0..=1.0).contains(&cell.shed_rate));
        assert!((0.0..=1.0 + 1e-9).contains(&cell.utilization));
        assert!(cell.p50_ms <= cell.p99_ms);
        assert!(cell.packing_efficiency > 0.0);
    }

    // Gap table: the two production policies plus the exhaustive
    // comparator, gaps finite and non-negative.
    let policies: Vec<&str> = report.gaps.iter().map(|r| r.policy).collect();
    assert_eq!(policies, vec!["ffd", "solo", "optimal"]);
    for row in &report.gaps {
        assert!(row.mean_percent >= 0.0 && row.mean_percent.is_finite());
        assert!(row.max_percent >= 0.0 && row.max_percent.is_finite());
    }

    // The JSON carries the keys verify.sh greps for.
    let json = report.to_json();
    for key in [
        "\"schema\": \"bagpred-fleet-v1\"",
        "\"ffd_k1_shed_rate\":",
        "\"ffd_k2_p99_ms\":",
        "\"solo_k2_packing_efficiency\":",
        "\"ffd_gap_max_percent\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(
        bagpred::fleet::json_number(&json, "arrivals"),
        Some(report.arrivals as f64)
    );
}
