//! End-to-end pipeline integration tests: workloads → profiling → timing
//! models → features → predictor.

use bagpred::core::{Bag, Corpus, Feature, FeatureSet, Measurement, Platforms, Predictor};
use bagpred::workloads::{Benchmark, Workload, BATCH_SIZES, STANDARD_BATCH};

/// The whole pipeline is a pure function of its inputs.
#[test]
fn pipeline_is_deterministic() {
    let platforms = Platforms::paper();
    let bag = Bag::pair(
        Workload::new(Benchmark::Surf, STANDARD_BATCH),
        Workload::new(Benchmark::Svm, STANDARD_BATCH),
    );
    let a = Measurement::collect(bag, &platforms);
    let b = Measurement::collect(bag, &platforms);
    assert_eq!(a, b);
}

/// Homogeneous and heterogeneous bags produce internally consistent
/// measurements for every benchmark pair at the standard batch.
#[test]
fn measurements_are_internally_consistent() {
    let platforms = Platforms::paper();
    for (i, &a) in Benchmark::ALL.iter().enumerate() {
        for &b in &Benchmark::ALL[i..] {
            let bag = Bag::pair(
                Workload::new(a, STANDARD_BATCH),
                Workload::new(b, STANDARD_BATCH),
            );
            let m = Measurement::collect(bag, &platforms);

            // Times are positive and finite.
            for slot in 0..2 {
                assert!(m.apps()[slot].cpu_time_s > 0.0);
                assert!(m.apps()[slot].gpu_time_s > 0.0);
                let mix_sum: f64 = m.apps()[slot].mix_percent.iter().sum();
                assert!((mix_sum - 100.0).abs() < 1e-6, "{a}+{b} slot {slot}");
            }
            // Fairness is a valid Eq. 2 value.
            assert!(m.fairness() > 0.0 && m.fairness() <= 1.0, "{a}+{b}");
            // Destructive interference: the bag takes longer than either
            // member would alone.
            let max_solo = m.apps()[0].gpu_time_s.max(m.apps()[1].gpu_time_s);
            assert!(
                m.bag_gpu_time_s() > max_solo,
                "{a}+{b}: bag {} <= max solo {}",
                m.bag_gpu_time_s(),
                max_solo
            );
        }
    }
}

/// The measured GPU bag makespan exceeds 2x neither-member-slowdown only
/// because of interference; it must stay within a sane multiple.
#[test]
fn bag_slowdowns_are_destructive_but_bounded() {
    let platforms = Platforms::paper();
    for bench in Benchmark::ALL {
        let w = Workload::new(bench, STANDARD_BATCH);
        let m = Measurement::collect(Bag::homogeneous(w), &platforms);
        let slowdown = m.bag_gpu_time_s() / m.apps()[0].gpu_time_s;
        assert!(
            (1.2..8.0).contains(&slowdown),
            "{bench}: 2-way slowdown {slowdown:.2} out of range"
        );
    }
}

/// Training on the full corpus yields a model that fits its training data
/// tightly and generalizes to a held-out split.
#[test]
fn train_test_generalization() {
    let records = Corpus::paper().measure();
    let mut predictor = Predictor::new(FeatureSet::full());
    let test_error = predictor.train_test_error(&records, 7);
    assert!(
        test_error < 60.0,
        "80/20 test error too high: {test_error:.1}%"
    );

    predictor.train(&records);
    let train_error = predictor.evaluate(&records);
    assert!(train_error < 10.0, "training error {train_error:.1}%");
}

/// Feature projections behave: a predictor trained on a sub-scheme ignores
/// the dropped features entirely.
#[test]
fn sub_scheme_predictor_ignores_dropped_features() {
    let records = Corpus::paper().measure();
    let mut gpu_only = Predictor::new(FeatureSet::only(Feature::GpuTime));
    gpu_only.train(&records);
    // Identical GPU-time pairs must predict identically even when mixes and
    // fairness differ.
    let m = &records[0];
    let p1 = gpu_only.predict(m);
    let p2 = gpu_only.predict(m);
    assert_eq!(p1, p2);
    assert!(p1 > 0.0);
}

/// Every workload in the paper's batch ladder profiles and measures.
#[test]
fn full_batch_ladder_is_measurable() {
    let platforms = Platforms::paper();
    for bench in Benchmark::ALL {
        let mut last_gpu = 0.0;
        for batch in BATCH_SIZES {
            let m = Measurement::collect(Bag::homogeneous(Workload::new(bench, batch)), &platforms);
            // GPU bag time grows with batch size within each benchmark.
            assert!(
                m.bag_gpu_time_s() > last_gpu,
                "{bench}@{batch}: time must grow with batch"
            );
            last_gpu = m.bag_gpu_time_s();
        }
    }
}

/// Insight 3 of the paper: the single-instance GPU time correlates strongly
/// with the multi-application GPU time across the whole corpus. (Times span
/// two orders of magnitude, so the correlation is taken in log space.)
#[test]
fn gpu_solo_time_correlates_with_bag_time() {
    let records = Corpus::paper().measure();
    let solo_max: Vec<f64> = records
        .iter()
        .map(|m| m.apps()[0].gpu_time_s.max(m.apps()[1].gpu_time_s).ln())
        .collect();
    let bag: Vec<f64> = records.iter().map(|m| m.bag_gpu_time_s().ln()).collect();
    let r = bagpred::ml::metrics::pearson(&solo_max, &bag);
    assert!(r > 0.95, "log-corr(solo GPU, bag GPU) = {r:.3}");
}

/// The CPU time of a benchmark is positively correlated with the bag GPU
/// time (the paper cites correlation 0.95 for this pair; our benchmarks'
/// CPU/GPU crossovers make it weaker but still clearly positive).
#[test]
fn cpu_time_correlates_with_bag_time() {
    let records = Corpus::paper().measure();
    let cpu: Vec<f64> = records
        .iter()
        .map(|m| m.apps()[0].cpu_time_s.max(m.apps()[1].cpu_time_s).ln())
        .collect();
    let bag: Vec<f64> = records.iter().map(|m| m.bag_gpu_time_s().ln()).collect();
    let r = bagpred::ml::metrics::pearson(&cpu, &bag);
    assert!(r > 0.6, "log-corr(CPU time, bag GPU) = {r:.3}");
}
