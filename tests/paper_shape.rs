//! The reproduction's success criteria (DESIGN.md §4): the qualitative
//! shape of every headline result in the paper must hold, end to end.
//!
//! All assertions share one measured corpus through the experiments
//! context, so this binary runs the full evaluation once.

use bagpred::core::Feature;
use bagpred::experiments::{accuracy, paths, scaling, sensitivity, Context};
use bagpred::workloads::Benchmark;

/// Fig. 2 shape: GPU performance falls monotonically with instance count
/// for every benchmark.
#[test]
fn shape_fig2_gpu_perf_falls_monotonically() {
    let fig = scaling::figure2(Context::shared());
    for s in &fig.series {
        for w in s.normalized_perf.windows(2) {
            assert!(w[1] < w[0], "{}: {:?}", s.benchmark, s.normalized_perf);
        }
    }
}

/// Fig. 1 vs Fig. 2 shape: the CPU retains more of its single-instance
/// performance under concurrency than the GPU does.
#[test]
fn shape_fig1_cpu_is_more_resilient() {
    let ctx = Context::shared();
    let cpu = scaling::figure1(ctx);
    let gpu = scaling::figure2(ctx);
    let mut cpu_better = 0;
    for b in Benchmark::ALL {
        let c = cpu.series_for(b).unwrap().normalized_perf[3];
        let g = gpu.series_for(b).unwrap().normalized_perf[3];
        if c > g {
            cpu_better += 1;
        }
    }
    assert!(cpu_better >= 6, "CPU more resilient for {cpu_better}/9");
}

/// Fig. 3 shape: single-instance GPU beats the CPU for most benchmarks,
/// with the paper's exceptions (FAST, ORB, SVM), and the advantage shrinks
/// as instances are added.
#[test]
fn shape_fig3_gpu_advantage_and_exceptions() {
    let fig = scaling::figure3(Context::shared());
    for s in &fig.series {
        let single = s.normalized_perf[0];
        if matches!(
            s.benchmark,
            Benchmark::Fast | Benchmark::Orb | Benchmark::Svm
        ) {
            assert!(single < 1.0, "{}: {single:.2}", s.benchmark);
        } else {
            assert!(single > 1.0, "{}: {single:.2}", s.benchmark);
        }
    }
    // The GPU's edge erodes with concurrency for the GPU-won benchmarks.
    let eroding = fig
        .series
        .iter()
        .filter(|s| s.normalized_perf[0] > 1.0)
        .filter(|s| s.normalized_perf[3] < s.normalized_perf[0])
        .count();
    assert!(eroding >= 4, "GPU advantage should erode: {eroding}");
}

/// Fig. 4 shape: the full feature set lands in the paper's error regime —
/// low double digits at worst, an order of magnitude below insmix-only.
#[test]
fn shape_fig4_full_feature_error_regime() {
    let fig = accuracy::figure4(Context::shared());
    assert!(
        fig.mean_error_percent < 30.0,
        "mean LOOCV error {:.1}%",
        fig.mean_error_percent
    );
    for (bench, err, _) in &fig.per_benchmark {
        assert!(*err < 60.0, "{bench}: {err:.1}%");
    }
}

/// Fig. 5 shape: every feature-group addition reduces the error and the
/// full set is an order of magnitude better than instruction mix alone.
#[test]
fn shape_fig5_scheme_ordering() {
    let fig = accuracy::figure5(Context::shared());
    let e: Vec<f64> = fig.schemes.iter().map(|s| s.measured_percent).collect();
    assert!(e[0] > e[1] && e[1] > e[3] && e[2] > e[3], "{e:?}");
    assert!(e[0] > 5.0 * e[3], "{e:?}");
}

/// Fig. 6 shape: adding CPU time helps (almost) every base scheme.
#[test]
fn shape_fig6_cpu_time_helps() {
    let fig = sensitivity::figure6(Context::shared());
    assert!(fig.improvements() >= 4, "{}/5", fig.improvements());
}

/// Fig. 7 shape: adding GPU time produces the most pronounced reductions,
/// dropping errors into the low regime.
#[test]
fn shape_fig7_gpu_time_dominates() {
    let fig = sensitivity::figure7(Context::shared());
    let improved: Vec<f64> = fig
        .pairs
        .iter()
        .filter(|p| p.base.scheme != "arith+sse+fairness")
        .map(|p| p.extended.measured_percent)
        .collect();
    for e in &improved {
        assert!(*e < 40.0, "GPU-extended scheme stuck at {e:.1}%");
    }
}

/// Fig. 10 shape: GPU time gates ~100% of decision paths; fairness and CPU
/// time are the leading auxiliary features.
#[test]
fn shape_fig10_gpu_gates_everything() {
    let fig = paths::figure10(Context::shared());
    let get = |f: Feature| {
        fig.presence
            .iter()
            .find(|(n, _)| n == f.name())
            .map(|(_, p)| *p)
            .unwrap()
    };
    assert!(get(Feature::GpuTime) > 90.0);
    assert!(get(Feature::CpuTime) > 30.0);
    assert!(get(Feature::Fairness) > 5.0);
    // The mix features individually trail the novel features.
    assert!(get(Feature::GpuTime) > get(Feature::Sse));
    assert!(get(Feature::GpuTime) > get(Feature::StringOp));
}

/// Fig. 11 shape: GPU time is the most frequently used feature per path.
#[test]
fn shape_fig11_gpu_most_frequent() {
    let fig = paths::figure11(Context::shared());
    let gpu = fig.frequency.iter().find(|(n, _, _)| n == "GPU").unwrap().1;
    for (name, mean, _) in &fig.frequency {
        assert!(gpu >= *mean, "{name} beats GPU: {mean:.2} vs {gpu:.2}");
    }
}

/// Fig. 12 shape: the heat map is dominated by GPU-time usage, with CPU
/// time appearing rarely yet non-trivially (the paper's §VI-C2 surprise).
#[test]
fn shape_fig12_heatmap_structure() {
    let fig = paths::figure12(Context::shared());
    let gpu_col = fig.features.iter().position(|f| f == "GPU").unwrap();
    let cpu_col = fig.features.iter().position(|f| f == "CPU").unwrap();
    let gpu_total: usize = fig.rows.iter().map(|(_, r)| r[gpu_col]).sum();
    let cpu_total: usize = fig.rows.iter().map(|(_, r)| r[cpu_col]).sum();
    assert!(gpu_total > cpu_total, "GPU {gpu_total} vs CPU {cpu_total}");
    // CPU time appears in only a couple of nodes per path, as in Fig. 12.
    let cpu_max = fig.rows.iter().map(|(_, r)| r[cpu_col]).max().unwrap();
    assert!(cpu_max <= 6, "CPU used {cpu_max} times in one path");
}
