//! Cross-crate property-based tests on pipeline invariants.

use bagpred::core::{Bag, Measurement, Platforms};
use bagpred::cpusim::{CpuConfig, CpuSimulator};
use bagpred::gpusim::{GpuConfig, GpuSimulator};
use bagpred::workloads::{Benchmark, Workload};
use proptest::prelude::*;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

/// Small batch sizes keep each proptest case fast; the invariants under
/// test are size-independent.
fn arb_batch() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 3, 5, 8])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fairness is a valid Eq. 2 value for any bag.
    #[test]
    fn fairness_is_in_unit_interval(
        a in arb_benchmark(), b in arb_benchmark(),
        ba in arb_batch(), bb in arb_batch(),
    ) {
        let bag = Bag::pair(Workload::new(a, ba), Workload::new(b, bb));
        let m = Measurement::collect(bag, &Platforms::paper());
        prop_assert!(m.fairness() > 0.0 && m.fairness() <= 1.0);
    }

    /// Destructive interference: a bag's makespan strictly exceeds the
    /// slower member's solo time for any pairing.
    #[test]
    fn bag_never_beats_solo(
        a in arb_benchmark(), b in arb_benchmark(),
        ba in arb_batch(), bb in arb_batch(),
    ) {
        let bag = Bag::pair(Workload::new(a, ba), Workload::new(b, bb));
        let m = Measurement::collect(bag, &Platforms::paper());
        let max_solo = m.apps()[0].gpu_time_s.max(m.apps()[1].gpu_time_s);
        prop_assert!(m.bag_gpu_time_s() > max_solo);
    }

    /// Member order never matters: bags are canonical.
    #[test]
    fn bag_order_is_irrelevant(
        a in arb_benchmark(), b in arb_benchmark(),
        ba in arb_batch(), bb in arb_batch(),
    ) {
        let platforms = Platforms::paper();
        let m1 = Measurement::collect(
            Bag::pair(Workload::new(a, ba), Workload::new(b, bb)), &platforms);
        let m2 = Measurement::collect(
            Bag::pair(Workload::new(b, bb), Workload::new(a, ba)), &platforms);
        prop_assert_eq!(m1, m2);
    }

    /// CPU simulation is monotone in machine size: more cores never slow a
    /// workload down.
    #[test]
    fn cpu_time_monotone_in_cores(
        bench in arb_benchmark(), batch in arb_batch(),
        cores in 2u32..12,
    ) {
        let profile = Workload::new(bench, batch).profile();
        let small = CpuSimulator::new(
            CpuConfig::builder().sockets(1).cores_per_socket(cores).build());
        let large = CpuSimulator::new(
            CpuConfig::builder().sockets(1).cores_per_socket(cores * 2).build());
        let t_small = small.simulate_best(&profile).time_s;
        let t_large = large.simulate_best(&profile).time_s;
        prop_assert!(t_large <= t_small * 1.0001,
            "{bench}: {t_large} on 2x cores vs {t_small}");
    }

    /// GPU simulation is monotone in bandwidth: more GB/s never hurts.
    #[test]
    fn gpu_time_monotone_in_bandwidth(
        bench in arb_benchmark(), batch in arb_batch(),
    ) {
        let profile = Workload::new(bench, batch).profile();
        let slow = GpuSimulator::new(GpuConfig::builder().dram_bandwidth(100e9).build());
        let fast = GpuSimulator::new(GpuConfig::builder().dram_bandwidth(400e9).build());
        prop_assert!(fast.simulate(&profile).time_s <= slow.simulate(&profile).time_s * 1.0001);
    }

    /// Bigger bags are never faster per member (GPU).
    #[test]
    fn gpu_bag_time_monotone_in_bag_size(
        bench in arb_benchmark(), batch in arb_batch(),
    ) {
        let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
        let profile = Workload::new(bench, batch).profile();
        let two = gpu.simulate_bag(&[profile.clone(), profile.clone()]);
        let three = gpu.simulate_bag(&vec![profile.clone(); 3]);
        prop_assert!(three.per_app()[0].time_s > two.per_app()[0].time_s);
    }
}
