//! Integration tests for the extension features: temporal multiplexing,
//! dynamic resource release, n-bags, and the extra ML models.

use bagpred::core::nbag::{NBag, NBagMeasurement, NBagPredictor};
use bagpred::core::{Corpus, FeatureSet, ModelKind, Platforms, Predictor};
use bagpred::gpusim::{GpuConfig, GpuSimulator};
use bagpred::workloads::{Benchmark, Workload, STANDARD_BATCH};

/// Temporal multiplexing and spatial sharing bracket each other: for every
/// benchmark, both schemes cost more than solo and less than outright
/// pathological blowup.
#[test]
fn multiplexing_schemes_are_sane_for_all_benchmarks() {
    let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
    for bench in Benchmark::ALL {
        let p = Workload::new(bench, STANDARD_BATCH).profile();
        let solo = gpu.simulate(&p).time_s;
        let spatial = gpu.simulate_bag(&[p.clone(), p.clone()]).per_app()[0].time_s;
        let temporal = gpu
            .simulate_time_sliced(&[p.clone(), p.clone()], 1e-3)
            .makespan_s;
        assert!(spatial > solo, "{bench}");
        assert!(temporal > solo, "{bench}");
        assert!(spatial < 10.0 * solo, "{bench}: spatial {spatial}");
        assert!(temporal < 10.0 * solo, "{bench}: temporal {temporal}");
    }
}

/// The dynamic-release model is consistent with the static model across
/// real heterogeneous bags: never slower, never better than the slowest
/// member alone.
#[test]
fn dynamic_release_brackets_for_real_pairs() {
    let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
    for (a, b) in [
        (Benchmark::Sift, Benchmark::Fast),
        (Benchmark::Svm, Benchmark::Knn),
        (Benchmark::Hog, Benchmark::FaceDet),
    ] {
        let pa = Workload::new(a, STANDARD_BATCH).profile();
        let pb = Workload::new(b, STANDARD_BATCH).profile();
        let solo_max = gpu.simulate(&pa).time_s.max(gpu.simulate(&pb).time_s);
        let static_ms = gpu.simulate_bag(&[pa.clone(), pb.clone()]).makespan_s();
        let dynamic = gpu.simulate_bag_dynamic(&[pa, pb]);
        assert!(dynamic.makespan_s <= static_ms * (1.0 + 1e-9), "{a}+{b}");
        assert!(dynamic.makespan_s > solo_max, "{a}+{b}");
        assert_eq!(dynamic.completion_s.len(), 2);
    }
}

/// The n-bag predictor generalizes across sizes: trained only on bags of 2
/// and 4, it still predicts bags of 3 within a sane envelope.
#[test]
fn nbag_predictor_interpolates_unseen_size() {
    let platforms = Platforms::paper();
    let mut train = Vec::new();
    for bench in Benchmark::ALL {
        for n in [2usize, 4] {
            train.push(NBagMeasurement::collect(
                NBag::new(vec![Workload::new(bench, 4); n]),
                &platforms,
            ));
        }
    }
    let mut predictor = NBagPredictor::new();
    predictor.train(&train);

    let mut errors = Vec::new();
    for bench in Benchmark::ALL {
        let m = NBagMeasurement::collect(NBag::new(vec![Workload::new(bench, 4); 3]), &platforms);
        let predicted = predictor.predict(&m);
        errors.push(((m.bag_gpu_time_s() - predicted) / m.bag_gpu_time_s()).abs());
        assert!(predicted > 0.0, "{bench}");
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        mean < 0.6,
        "size-3 interpolation error {:.1}%",
        mean * 100.0
    );
}

/// Every model kind trains and predicts on the real corpus without
/// panicking, and tree-family models beat the others.
#[test]
fn all_model_kinds_run_on_real_corpus() {
    let records = Corpus::paper().measure();
    let mut errors = Vec::new();
    for kind in [
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
        ModelKind::Svr,
        ModelKind::Linear,
    ] {
        let mut p = Predictor::new(FeatureSet::full()).with_model(kind);
        p.train(&records);
        let err = p.evaluate(&records);
        assert!(err.is_finite(), "{kind:?}");
        errors.push((kind, err));
    }
    let tree_err = errors[0].1;
    let svr_err = errors[2].1;
    assert!(
        tree_err < svr_err,
        "tree {tree_err:.1}% must beat SVR {svr_err:.1}% even in-sample"
    );
}

/// Noise injection preserves determinism end to end.
#[test]
fn noisy_corpus_is_reproducible() {
    let records = Corpus::paper().measure();
    let noisy_a: Vec<_> = records
        .iter()
        .enumerate()
        .map(|(i, m)| m.with_noise(i as u64, 0.05))
        .collect();
    let noisy_b: Vec<_> = records
        .iter()
        .enumerate()
        .map(|(i, m)| m.with_noise(i as u64, 0.05))
        .collect();
    assert_eq!(noisy_a, noisy_b);

    let mut pa = Predictor::new(FeatureSet::full());
    let mut pb = Predictor::new(FeatureSet::full());
    let ea = pa.loocv_by_benchmark(&noisy_a).mean_error_percent();
    let eb = pb.loocv_by_benchmark(&noisy_b).mean_error_percent();
    assert_eq!(ea, eb);
}
