//! Integration tests for semantic batching and the bounded feature
//! cache: no matter how concurrent jobs group into engine batches, every
//! reply must carry the exact bits the offline predictor produces, and
//! the LRU capacity bound must hold end-to-end while evicted entries
//! recompute bit-identically.

use bagpred::core::{Bag, Measurement, Platforms};
use bagpred::serve::{
    bootstrap, ModelRegistry, PredictionService, Reply, Request, ServableModel, ServiceConfig,
};
use bagpred::workloads::{Benchmark, Workload};
use std::sync::{Arc, OnceLock};

/// Trained registry, shared across tests (training dominates test time).
fn registry() -> Arc<ModelRegistry> {
    static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
    Arc::clone(REGISTRY.get_or_init(|| bootstrap::default_registry(&Platforms::paper())))
}

/// Adjacent-benchmark pairs over two batch sizes: 18 distinct bags (and
/// 18+ distinct workloads) — enough keys to overflow a small cache many
/// times over.
fn pair_bags() -> Vec<(Workload, Workload)> {
    let mut out = Vec::new();
    for (i, &a) in Benchmark::ALL.iter().enumerate() {
        let b = Benchmark::ALL[(i + 1) % Benchmark::ALL.len()];
        for batch in [20, 40] {
            out.push((Workload::new(a, batch), Workload::new(b, batch)));
        }
    }
    out
}

fn predict(service: &PredictionService, a: Workload, b: Workload) -> f64 {
    let reply = service
        .call(Request::Predict {
            model: Some(bootstrap::PAIR_MODEL.to_string()),
            apps: vec![a, b],
        })
        .expect("prediction succeeds");
    match reply {
        Reply::Prediction { predicted_s, .. } => predicted_s,
        other => panic!("unexpected reply: {other:?}"),
    }
}

#[test]
fn concurrent_batched_predictions_are_bit_identical_to_the_offline_predictor() {
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::Pair(predictor) = &*registry.get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };
    // Expected bits come from the offline path: ground-truth measurement
    // + direct single-record predict.
    let bags = pair_bags();
    let expected: Vec<f64> = bags
        .iter()
        .map(|&(a, b)| predictor.predict(&Measurement::collect(Bag::pair(a, b), &platforms)))
        .collect();

    // Small worker pool + concurrent callers: the queue drains in
    // multi-job groups, so replies really come from one `predict_batch`
    // call per group rather than per-record walks.
    let service = PredictionService::start(
        Arc::clone(&registry),
        platforms,
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            batch_size: 8,
            cache_capacity: 0,
            snapshot_dir: None,
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = bags
        .iter()
        .map(|&(a, b)| {
            let svc = Arc::clone(&service);
            std::thread::spawn(move || (0..3).map(|_| predict(&svc, a, b)).collect::<Vec<f64>>())
        })
        .collect();
    for (got, want) in handles.into_iter().zip(&expected) {
        for y in got.join().expect("client thread finishes") {
            assert_eq!(
                y.to_bits(),
                want.to_bits(),
                "batched reply must match the offline predictor bit for bit"
            );
        }
    }
    service.shutdown();
}

#[test]
fn the_cache_capacity_bound_holds_end_to_end_and_evicted_entries_recompute_identically() {
    let capacity = 3usize;
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            batch_size: 4,
            cache_capacity: capacity,
            snapshot_dir: None,
            ..ServiceConfig::default()
        },
    );
    let bags = pair_bags();
    let first: Vec<f64> = bags.iter().map(|&(a, b)| predict(&service, a, b)).collect();

    // 18 distinct bags through a 3-entry-per-map cache must evict, and
    // the bound must hold across all maps.
    assert!(
        service.cache().evictions() > 0,
        "overflowing traffic must evict"
    );
    assert!(
        service.cache().len() <= 3 * capacity,
        "every cache map must respect the capacity bound (len {} > 3 x {capacity})",
        service.cache().len()
    );

    // A second pass re-reaches every evicted key: recomputed features
    // must reproduce the first pass bit for bit.
    let second: Vec<f64> = bags.iter().map(|&(a, b)| predict(&service, a, b)).collect();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "evicted entries must recompute identically"
        );
    }
    service.shutdown();
}
