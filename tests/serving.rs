//! Integration tests for the serving subsystem: the TCP server must
//! answer many concurrent clients with predictions byte-identical to the
//! offline predictor, snapshots must round-trip exactly, malformed
//! requests must be rejected without killing the connection, and the
//! feature cache must make warm requests measurably faster than cold.

use bagpred::core::nbag::NBagMeasurement;
use bagpred::core::{Bag, Measurement, Platforms};
use bagpred::ml::codec::fmt_f64;
use bagpred::serve::{
    bootstrap, ModelRegistry, PredictionService, Reply, Request, ServableModel, Server,
    ServiceConfig,
};
use bagpred::workloads::{Benchmark, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Trained registry, shared across tests (training dominates test time).
fn registry() -> Arc<ModelRegistry> {
    static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
    Arc::clone(REGISTRY.get_or_init(|| bootstrap::default_registry(&Platforms::paper())))
}

fn start_server() -> (Server, Arc<PredictionService>) {
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds ephemeral port");
    (server, service)
}

/// Sends `lines` over one connection, returns one reply per line.
fn client_roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones stream");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for line in lines {
        writer.write_all(line.as_bytes()).expect("writes");
        writer.write_all(b"\n").expect("writes newline");
        writer.flush().expect("flushes");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reads reply");
        replies.push(reply.trim_end().to_string());
    }
    replies
}

#[test]
fn eight_concurrent_clients_get_predictions_byte_identical_to_offline_predictor() {
    let (server, service) = start_server();
    let addr = server.local_addr();
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::Pair(predictor) = &*registry.get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };

    // Eight distinct bags, one per client. Expected wire lines come from
    // the *offline* path: full ground-truth measurement + direct predict.
    let pairs = [
        (Benchmark::Sift, 20, Benchmark::Knn, 40),
        (Benchmark::Hog, 20, Benchmark::Fast, 80),
        (Benchmark::Orb, 40, Benchmark::Surf, 40),
        (Benchmark::Svm, 20, Benchmark::ObjRec, 20),
        (Benchmark::FaceDet, 20, Benchmark::Sift, 60),
        (Benchmark::Knn, 100, Benchmark::Knn, 100),
        (Benchmark::Fast, 20, Benchmark::Surf, 80),
        (Benchmark::ObjRec, 40, Benchmark::Hog, 60),
    ];
    let expected: Vec<String> = pairs
        .iter()
        .map(|&(ba, na, bb, nb)| {
            let bag = Bag::pair(Workload::new(ba, na), Workload::new(bb, nb));
            let record = Measurement::collect(bag, &platforms);
            format!(
                "ok model={} predicted_s={}",
                bootstrap::PAIR_MODEL,
                fmt_f64(predictor.predict(&record))
            )
        })
        .collect();

    let handles: Vec<_> = pairs
        .iter()
        .map(|&(ba, na, bb, nb)| {
            let line = format!(
                "predict model={} {}@{na}+{}@{nb}",
                bootstrap::PAIR_MODEL,
                ba.name(),
                bb.name()
            );
            std::thread::spawn(move || client_roundtrip(addr, &[line]).remove(0))
        })
        .collect();
    let got: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread finishes"))
        .collect();

    assert_eq!(
        got, expected,
        "served lines must match the offline predictor byte for byte"
    );
    drop(server);
    service.shutdown();
}

#[test]
fn nbag_predictions_served_over_tcp_match_direct_nbag_predictor() {
    let (server, service) = start_server();
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::NBag(predictor) = &*registry.get(bootstrap::NBAG_MODEL).expect("registered")
    else {
        panic!("nbag-tree must be an nbag model");
    };
    let bag = bagpred::core::nbag::NBag::new(vec![
        Workload::new(Benchmark::Sift, 20),
        Workload::new(Benchmark::Knn, 40),
        Workload::new(Benchmark::Orb, 40),
    ]);
    let record = NBagMeasurement::collect_unlabeled(bag, &platforms);
    let expected = format!(
        "ok model={} predicted_s={}",
        bootstrap::NBAG_MODEL,
        fmt_f64(predictor.predict(&record))
    );
    let got = client_roundtrip(
        server.local_addr(),
        &["predict SIFT@20+KNN@40+ORB@40".to_string()],
    )
    .remove(0);
    assert_eq!(got, expected);
    drop(server);
    service.shutdown();
}

#[test]
fn snapshot_save_load_round_trip_preserves_predictions_exactly() {
    let registry = registry();
    let dir = std::env::temp_dir().join(format!("bagpred-serving-itest-{}", std::process::id()));
    registry.save_dir(&dir).expect("saves snapshots");

    let restored = ModelRegistry::new();
    assert_eq!(
        restored.load_dir(&dir).expect("loads snapshots"),
        registry.len()
    );
    std::fs::remove_dir_all(&dir).ok();

    // Equality at the strongest level available: the re-encoded snapshot
    // text (checksummed) and predictions on real measurements.
    for (name, _) in registry.list() {
        assert_eq!(
            registry.snapshot(&name).expect("encodes"),
            restored.snapshot(&name).expect("encodes"),
            "snapshot text for {name} must survive a save/load cycle"
        );
    }
    let platforms = Platforms::paper();
    let bag = Bag::pair(
        Workload::new(Benchmark::Surf, 20),
        Workload::new(Benchmark::Svm, 60),
    );
    let record = Measurement::collect(bag, &platforms);
    let (ServableModel::Pair(a), ServableModel::Pair(b)) = (
        &*registry.get(bootstrap::PAIR_MODEL).expect("registered"),
        &*restored.get(bootstrap::PAIR_MODEL).expect("restored"),
    ) else {
        panic!("expected pair models");
    };
    assert_eq!(a.predict(&record).to_bits(), b.predict(&record).to_bits());
}

#[test]
fn malformed_requests_are_rejected_and_the_connection_keeps_serving() {
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "predict SIFT@20".to_string(),           // bag too small
            "predict SFIT@20+KNN@40".to_string(),    // unknown benchmark
            "predict SIFT@zero+KNN@40".to_string(),  // bad batch
            "schedule budget=1 SIFT@20".to_string(), // missing k=
            "launch missiles".to_string(),           // unknown verb
            "predict SIFT@20+KNN@40".to_string(),    // still works after all that
        ],
    );
    for bad in &replies[..5] {
        assert!(
            bad.starts_with("err bad request"),
            "expected rejection, got `{bad}`"
        );
    }
    assert!(
        replies[5].starts_with("ok model="),
        "connection must survive: {}",
        replies[5]
    );

    let Ok(Reply::Stats(stats)) = service.call(Request::Stats) else {
        panic!("stats failed")
    };
    assert_eq!(
        stats.metrics.failed, 0,
        "parse errors are answered inline, not counted as engine failures"
    );
    drop(server);
    service.shutdown();
}

#[test]
fn warm_cache_requests_are_measurably_faster_than_cold() {
    // A private service so other tests cannot pre-warm the cache.
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let request = Request::Predict {
        model: None,
        apps: vec![
            Workload::new(Benchmark::FaceDet, 123),
            Workload::new(Benchmark::ObjRec, 321),
        ],
    };

    let t0 = Instant::now();
    let Ok(Reply::Prediction {
        predicted_s: cold_value,
        ..
    }) = service.call(request.clone())
    else {
        panic!("cold predict failed")
    };
    let cold = t0.elapsed();

    // Best of several warm calls, so one unlucky scheduling blip cannot
    // fail the test; the margin below is generous on top of that.
    let mut warm = std::time::Duration::MAX;
    let mut warm_value = f64::NAN;
    for _ in 0..10 {
        let t = Instant::now();
        let Ok(Reply::Prediction { predicted_s, .. }) = service.call(request.clone()) else {
            panic!("warm predict failed")
        };
        warm = warm.min(t.elapsed());
        warm_value = predicted_s;
    }

    assert_eq!(
        cold_value.to_bits(),
        warm_value.to_bits(),
        "cache must not change the prediction"
    );
    assert!(
        warm * 2 < cold,
        "warm ({warm:?}) must beat cold ({cold:?}) by at least 2x \
         (cold collects features, warm reads the cache)"
    );
    service.shutdown();
}

#[test]
fn stats_over_tcp_report_cache_and_latency_fields() {
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "predict SIFT@20+KNN@40".to_string(),
            "predict SIFT@20+KNN@40".to_string(),
            "stats".to_string(),
            "models".to_string(),
        ],
    );
    let stats = &replies[2];
    for field in [
        "requests=",
        "cache_hits=",
        "cache_hit_rate=",
        "latency_us_p95=",
        "latency_us_max=",
    ] {
        assert!(stats.contains(field), "stats line missing {field}: {stats}");
    }
    assert!(replies[3].starts_with("ok models=2"), "{}", replies[3]);
    drop(server);
    service.shutdown();
}
