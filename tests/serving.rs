//! Integration tests for the serving subsystem: the TCP server must
//! answer many concurrent clients with predictions byte-identical to the
//! offline predictor, snapshots must round-trip exactly, malformed
//! requests must be rejected without killing the connection, and the
//! feature cache must make warm requests measurably faster than cold.

use bagpred::core::nbag::NBagMeasurement;
use bagpred::core::{Bag, Measurement, Platforms};
use bagpred::ml::codec::fmt_f64;
use bagpred::serve::{
    bootstrap, frame, Client, ClientConfig, FaultPlan, ModelRegistry, PredictionService, Reply,
    Request, ServableModel, Server, ServerConfig, ServiceConfig,
};
use bagpred::workloads::{Benchmark, Workload};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Trained registry, shared across tests (training dominates test time).
fn registry() -> Arc<ModelRegistry> {
    static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
    Arc::clone(REGISTRY.get_or_init(|| bootstrap::default_registry(&Platforms::paper())))
}

fn start_server() -> (Server, Arc<PredictionService>) {
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds ephemeral port");
    (server, service)
}

/// Sends `lines` over one connection, returns one reply per line.
fn client_roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones stream");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for line in lines {
        writer.write_all(line.as_bytes()).expect("writes");
        writer.write_all(b"\n").expect("writes newline");
        writer.flush().expect("flushes");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reads reply");
        replies.push(reply.trim_end().to_string());
    }
    replies
}

#[test]
fn eight_concurrent_clients_get_predictions_byte_identical_to_offline_predictor() {
    let (server, service) = start_server();
    let addr = server.local_addr();
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::Pair(predictor) = &*registry.get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };

    // Eight distinct bags, one per client. Expected wire lines come from
    // the *offline* path: full ground-truth measurement + direct predict.
    let pairs = [
        (Benchmark::Sift, 20, Benchmark::Knn, 40),
        (Benchmark::Hog, 20, Benchmark::Fast, 80),
        (Benchmark::Orb, 40, Benchmark::Surf, 40),
        (Benchmark::Svm, 20, Benchmark::ObjRec, 20),
        (Benchmark::FaceDet, 20, Benchmark::Sift, 60),
        (Benchmark::Knn, 100, Benchmark::Knn, 100),
        (Benchmark::Fast, 20, Benchmark::Surf, 80),
        (Benchmark::ObjRec, 40, Benchmark::Hog, 60),
    ];
    let expected: Vec<String> = pairs
        .iter()
        .map(|&(ba, na, bb, nb)| {
            let bag = Bag::pair(Workload::new(ba, na), Workload::new(bb, nb));
            let record = Measurement::collect(bag, &platforms);
            format!(
                "ok model={} predicted_s={}",
                bootstrap::PAIR_MODEL,
                fmt_f64(predictor.predict(&record))
            )
        })
        .collect();

    let handles: Vec<_> = pairs
        .iter()
        .map(|&(ba, na, bb, nb)| {
            let line = format!(
                "predict model={} {}@{na}+{}@{nb}",
                bootstrap::PAIR_MODEL,
                ba.name(),
                bb.name()
            );
            std::thread::spawn(move || client_roundtrip(addr, &[line]).remove(0))
        })
        .collect();
    let got: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread finishes"))
        .collect();

    assert_eq!(
        got, expected,
        "served lines must match the offline predictor byte for byte"
    );
    drop(server);
    service.shutdown();
}

#[test]
fn nbag_predictions_served_over_tcp_match_direct_nbag_predictor() {
    let (server, service) = start_server();
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::NBag(predictor) = &*registry.get(bootstrap::NBAG_MODEL).expect("registered")
    else {
        panic!("nbag-tree must be an nbag model");
    };
    let bag = bagpred::core::nbag::NBag::new(vec![
        Workload::new(Benchmark::Sift, 20),
        Workload::new(Benchmark::Knn, 40),
        Workload::new(Benchmark::Orb, 40),
    ]);
    let record = NBagMeasurement::collect_unlabeled(bag, &platforms);
    let expected = format!(
        "ok model={} predicted_s={}",
        bootstrap::NBAG_MODEL,
        fmt_f64(predictor.predict(&record))
    );
    let got = client_roundtrip(
        server.local_addr(),
        &["predict SIFT@20+KNN@40+ORB@40".to_string()],
    )
    .remove(0);
    assert_eq!(got, expected);
    drop(server);
    service.shutdown();
}

#[test]
fn snapshot_save_load_round_trip_preserves_predictions_exactly() {
    let registry = registry();
    let dir = std::env::temp_dir().join(format!("bagpred-serving-itest-{}", std::process::id()));
    registry.save_dir(&dir).expect("saves snapshots");

    let restored = ModelRegistry::new();
    assert_eq!(
        restored.load_dir(&dir).expect("loads snapshots"),
        registry.len()
    );
    std::fs::remove_dir_all(&dir).ok();

    // Equality at the strongest level available: the re-encoded snapshot
    // text (checksummed) and predictions on real measurements.
    for (name, _) in registry.list() {
        assert_eq!(
            registry.snapshot(&name).expect("encodes"),
            restored.snapshot(&name).expect("encodes"),
            "snapshot text for {name} must survive a save/load cycle"
        );
    }
    let platforms = Platforms::paper();
    let bag = Bag::pair(
        Workload::new(Benchmark::Surf, 20),
        Workload::new(Benchmark::Svm, 60),
    );
    let record = Measurement::collect(bag, &platforms);
    let (ServableModel::Pair(a), ServableModel::Pair(b)) = (
        &*registry.get(bootstrap::PAIR_MODEL).expect("registered"),
        &*restored.get(bootstrap::PAIR_MODEL).expect("restored"),
    ) else {
        panic!("expected pair models");
    };
    assert_eq!(a.predict(&record).to_bits(), b.predict(&record).to_bits());
}

#[test]
fn malformed_requests_are_rejected_and_the_connection_keeps_serving() {
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "predict SIFT@20".to_string(),           // bag too small
            "predict SFIT@20+KNN@40".to_string(),    // unknown benchmark
            "predict SIFT@zero+KNN@40".to_string(),  // bad batch
            "schedule budget=1 SIFT@20".to_string(), // missing k=
            "launch missiles".to_string(),           // unknown verb
            "predict SIFT@20+KNN@40".to_string(),    // still works after all that
        ],
    );
    for bad in &replies[..5] {
        assert!(
            bad.starts_with("err bad request"),
            "expected rejection, got `{bad}`"
        );
    }
    assert!(
        replies[5].starts_with("ok model="),
        "connection must survive: {}",
        replies[5]
    );

    let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
        panic!("stats failed")
    };
    assert_eq!(
        stats.metrics.failed, 0,
        "parse errors are answered inline, not counted as engine failures"
    );
    drop(server);
    service.shutdown();
}

/// Runs `Server::shutdown` under a watchdog: a drain regression fails
/// with a message instead of wedging the whole test binary.
fn shutdown_within(mut server: Server, limit: Duration) -> Server {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        server.shutdown();
        tx.send(()).expect("watchdog receiver alive");
        server
    });
    rx.recv_timeout(limit)
        .expect("shutdown must drain within the bound, not hang");
    handle.join().expect("shutdown thread finishes")
}

#[test]
fn shutdown_under_load_drains_all_connections_with_clean_final_replies() {
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .expect("binds ephemeral port");
    let addr = server.local_addr();

    // Three half-open clients: connected, never sending a byte. Before
    // read timeouts their threads sat in `read` forever and shutdown
    // leaked them.
    let idle: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(addr).expect("idle client connects"))
        .collect();

    // Four busy clients streaming predicts until the server hangs up.
    // Every reply they ever see must be a complete, well-formed line —
    // draining must never tear a reply in half.
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let busy: Vec<_> = (0..4)
        .map(|_| {
            let stop_flag = Arc::clone(&stop_flag);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("busy client connects");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("sets timeout");
                let mut writer = stream.try_clone().expect("clones");
                let mut reader = BufReader::new(stream);
                let mut replies = 0u64;
                loop {
                    if writer.write_all(b"predict SIFT@20+KNN@40\n").is_err() {
                        break; // server went away between replies: clean.
                    }
                    let _ = writer.flush();
                    let mut reply = String::new();
                    match reader.read_line(&mut reply) {
                        Ok(0) => break, // clean EOF
                        Ok(_) => {
                            assert!(
                                reply.ends_with('\n') && reply.starts_with("ok model="),
                                "torn or malformed reply during drain: {reply:?}"
                            );
                            replies += 1;
                        }
                        Err(_) => break,
                    }
                    // Give shutdown a chance to overlap with traffic.
                    if stop_flag.load(std::sync::atomic::Ordering::Relaxed) && replies > 200 {
                        break;
                    }
                }
                replies
            })
        })
        .collect();

    // Let the mixed load actually flow before pulling the plug.
    std::thread::sleep(Duration::from_millis(150));
    stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let server = shutdown_within(server, Duration::from_secs(10));
    assert_eq!(
        server.active_connections(),
        0,
        "shutdown must join every connection thread (idle and busy)"
    );

    // Idle clients observe a clean EOF — their threads were not killed
    // mid-write, they drained.
    for stream in idle {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("sets timeout");
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        assert_eq!(
            reader.read_line(&mut buf).expect("reads"),
            0,
            "idle client expected EOF, got {buf:?}"
        );
    }
    // Busy clients all terminate; their replies were asserted well-formed
    // inside the loop.
    let total: u64 = busy
        .into_iter()
        .map(|h| h.join().expect("busy client finishes"))
        .sum();
    assert!(total > 0, "busy clients must have been served before drain");
    service.shutdown();
}

#[test]
fn hot_reload_swaps_the_model_under_concurrent_traffic_without_dropping_requests() {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 24;

    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::Pair(predictor) = &*registry.get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };

    // The snapshot `reload` will swap in: written into the service's
    // snapshot dir before traffic starts (admin paths are confined to
    // that directory, so the wire command names the file relatively).
    let snapshot_dir =
        std::env::temp_dir().join(format!("bagpred-serving-reload-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir).expect("creates snapshot dir");
    std::fs::write(
        snapshot_dir.join("pair-v2.bagsnap"),
        registry.snapshot(bootstrap::PAIR_MODEL).expect("encodes"),
    )
    .expect("writes snapshot");

    // A private service so the per-model tallies below are exact, on an
    // admin-enabled listener: `reload` over the wire is opt-in.
    let service = PredictionService::start(
        Arc::clone(&registry),
        platforms.clone(),
        ServiceConfig {
            snapshot_dir: Some(snapshot_dir.clone()),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            admin: true,
            ..ServerConfig::default()
        },
    )
    .expect("binds ephemeral port");
    let addr = server.local_addr();

    // Three fixed bags, expected lines from the offline predictor. The
    // snapshot decodes to a bit-identical model, so the expectation holds
    // across the swap — any mis-answered request breaks byte equality.
    let bags = [
        (Benchmark::Sift, 20, Benchmark::Knn, 40),
        (Benchmark::Hog, 20, Benchmark::Fast, 80),
        (Benchmark::Orb, 40, Benchmark::Surf, 40),
    ];
    let expected: Vec<(String, String)> = bags
        .iter()
        .map(|&(ba, na, bb, nb)| {
            let bag = Bag::pair(Workload::new(ba, na), Workload::new(bb, nb));
            let record = Measurement::collect(bag, &platforms);
            (
                format!(
                    "predict model={} {}@{na}+{}@{nb}",
                    bootstrap::PAIR_MODEL,
                    ba.name(),
                    bb.name()
                ),
                format!(
                    "ok model={} predicted_s={}",
                    bootstrap::PAIR_MODEL,
                    fmt_f64(predictor.predict(&record))
                ),
            )
        })
        .collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut writer = stream.try_clone().expect("clones");
                let mut reader = BufReader::new(stream);
                let mut ok = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let (request, want) = &expected[(client + i) % expected.len()];
                    writer.write_all(request.as_bytes()).expect("writes");
                    writer.write_all(b"\n").expect("writes newline");
                    writer.flush().expect("flushes");
                    let mut reply = String::new();
                    assert!(
                        reader.read_line(&mut reply).expect("reads reply") > 0,
                        "request dropped: connection closed mid-stream"
                    );
                    assert_eq!(reply.trim_end(), want, "mis-answered during reload");
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    // Fire reloads over the wire while the clients stream. Each swap is
    // atomic in the registry; queued requests resolve old or new, never
    // neither.
    let reload_line = format!(
        "reload model={} path=pair-v2.bagsnap",
        bootstrap::PAIR_MODEL
    );
    for _ in 0..3 {
        let reply = client_roundtrip(addr, std::slice::from_ref(&reload_line)).remove(0);
        assert_eq!(
            reply,
            format!("ok reloaded model={} kind=pair/tree", bootstrap::PAIR_MODEL),
            "reload must succeed mid-traffic"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let served: usize = clients
        .into_iter()
        .map(|h| h.join().expect("client thread finishes"))
        .sum();
    assert_eq!(
        served,
        CLIENTS * REQUESTS_PER_CLIENT,
        "zero dropped requests"
    );

    // Per-model accounting agrees with the clients' tallies: every
    // predict hit pair-tree, nothing failed, and reloads/stats are not
    // misattributed to the model.
    let stats_line =
        client_roundtrip(addr, &[format!("stats model={}", bootstrap::PAIR_MODEL)]).remove(0);
    let prefix = format!(
        "ok model={} requests={served} ok={served} err=0",
        bootstrap::PAIR_MODEL
    );
    assert!(
        stats_line.starts_with(&prefix),
        "per-model stats disagree with client tallies:\n  want prefix: {prefix}\n  got: {stats_line}"
    );

    std::fs::remove_dir_all(&snapshot_dir).ok();
    drop(server);
    service.shutdown();
}

#[test]
fn admin_commands_over_the_wire_are_disabled_by_default_and_confined_when_enabled() {
    // Default listener (no --admin): `load`/`save`/`reload` never reach
    // the engine — an unauthenticated client cannot make the server
    // touch its filesystem at all.
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "load model=x path=/etc/passwd".to_string(),
            "save path=/tmp/exfil".to_string(),
            format!("reload model={}", bootstrap::PAIR_MODEL),
            "predict SIFT@20+KNN@40".to_string(),
        ],
    );
    for refusal in &replies[..3] {
        assert!(
            refusal.starts_with("err admin disabled"),
            "admin command must be refused on a default listener: {refusal}"
        );
    }
    assert!(replies[3].starts_with("ok model="), "{}", replies[3]);
    drop(server);
    service.shutdown();

    // Admin-enabled listener: commands run, but their paths are confined
    // to the configured snapshot dir — traversal and absolute escapes
    // are rejected before any filesystem access.
    let snapshot_dir =
        std::env::temp_dir().join(format!("bagpred-serving-admin-{}", std::process::id()));
    std::fs::create_dir_all(&snapshot_dir).expect("creates snapshot dir");
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            snapshot_dir: Some(snapshot_dir.clone()),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            admin: true,
            ..ServerConfig::default()
        },
    )
    .expect("binds ephemeral port");
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "load model=x path=/etc/passwd".to_string(),
            "load model=x path=../escape.bagsnap".to_string(),
            "save path=/tmp/exfil".to_string(),
            format!("save model={}", bootstrap::PAIR_MODEL), // inside the dir: allowed
            format!("reload model={}", bootstrap::PAIR_MODEL),
        ],
    );
    for escape in &replies[..3] {
        assert!(
            escape.starts_with("err bad request"),
            "path escape must be rejected: {escape}"
        );
    }
    assert_eq!(
        replies[3],
        format!(
            "ok saved model={} dest={}",
            bootstrap::PAIR_MODEL,
            snapshot_dir.join("pair-tree.bagsnap").display()
        )
    );
    assert!(
        replies[4].starts_with("ok reloaded model="),
        "{}",
        replies[4]
    );
    drop(server);
    service.shutdown();
    std::fs::remove_dir_all(&snapshot_dir).ok();
}

#[test]
fn warm_cache_requests_are_measurably_faster_than_cold() {
    // A private service so other tests cannot pre-warm the cache.
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let request = Request::Predict {
        model: None,
        apps: vec![
            Workload::new(Benchmark::FaceDet, 123),
            Workload::new(Benchmark::ObjRec, 321),
        ],
    };

    let t0 = Instant::now();
    let Ok(Reply::Prediction {
        predicted_s: cold_value,
        ..
    }) = service.call(request.clone())
    else {
        panic!("cold predict failed")
    };
    let cold = t0.elapsed();

    // Best of several warm calls, so one unlucky scheduling blip cannot
    // fail the test; the margin below is generous on top of that.
    let mut warm = std::time::Duration::MAX;
    let mut warm_value = f64::NAN;
    for _ in 0..10 {
        let t = Instant::now();
        let Ok(Reply::Prediction { predicted_s, .. }) = service.call(request.clone()) else {
            panic!("warm predict failed")
        };
        warm = warm.min(t.elapsed());
        warm_value = predicted_s;
    }

    assert_eq!(
        cold_value.to_bits(),
        warm_value.to_bits(),
        "cache must not change the prediction"
    );
    assert!(
        warm * 2 < cold,
        "warm ({warm:?}) must beat cold ({cold:?}) by at least 2x \
         (cold collects features, warm reads the cache)"
    );
    service.shutdown();
}

#[test]
fn stats_over_tcp_report_cache_and_latency_fields() {
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &[
            "predict SIFT@20+KNN@40".to_string(),
            "predict SIFT@20+KNN@40".to_string(),
            "stats".to_string(),
            "models".to_string(),
        ],
    );
    let stats = &replies[2];
    for field in [
        "requests=",
        "cache_hits=",
        "cache_hit_rate=",
        "cache_apps_hits=",
        "cache_nbags_misses=",
        "slow_captured=",
        "latency_us_p50=",
        "latency_us_p95=",
        "latency_us_p99=",
        "latency_us_max=",
        "queue_wait_us_p95=",
        "service_us_p95=",
    ] {
        assert!(stats.contains(field), "stats line missing {field}: {stats}");
    }
    assert!(replies[3].starts_with("ok models=2"), "{}", replies[3]);
    drop(server);
    service.shutdown();
}

#[test]
fn metrics_over_tcp_is_valid_prometheus_text_line_by_line() {
    let (server, service) = start_server();
    let addr = server.local_addr();

    // Traffic first, so the exposition carries per-model series too.
    let warmup = client_roundtrip(addr, &["predict SIFT@20+KNN@40".to_string()]);
    assert!(warmup[0].starts_with("ok model="), "{}", warmup[0]);

    // `metrics` is the one multi-line reply: read until the `# EOF`
    // sentinel the document ends with.
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"metrics\n").expect("writes");
    writer.flush().expect("flushes");
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("reads") > 0,
            "connection closed before # EOF"
        );
        let line = line.trim_end().to_string();
        let done = line == "# EOF";
        lines.push(line);
        if done {
            break;
        }
    }

    // Every line must be a comment or a `name{labels} value` sample.
    for line in &lines {
        assert!(
            bagpred::obs::expo::line_is_valid(line),
            "invalid exposition line: {line:?}"
        );
    }
    let text = lines.join("\n");
    for needle in [
        "# TYPE bagpred_requests_received_total counter",
        "# HELP bagpred_request_latency_us",
        "bagpred_cache_hits_total{map=\"apps\"}",
        "bagpred_stage_duration_us_count{stage=\"queue_wait\"}",
        "bagpred_stage_duration_us_count{stage=\"parse\"}",
        "bagpred_model_latency_us_count{model=\"pair-tree\"}",
        "bagpred_queue_depth",
    ] {
        assert!(text.contains(needle), "exposition missing {needle}");
    }
    drop(server);
    service.shutdown();
}

#[test]
fn per_model_latency_histograms_sum_to_the_global_one_under_concurrent_clients() {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 25;

    // A private service: the shared one carries traffic from other tests.
    let service =
        PredictionService::start(registry(), Platforms::paper(), ServiceConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds ephemeral port");
    let addr = server.local_addr();

    // Predict-only traffic, alternating models, so every engine request
    // is attributed to exactly one model.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let lines: Vec<String> = (0..REQUESTS_PER_CLIENT)
                    .map(|i| {
                        if (client + i) % 2 == 0 {
                            "predict model=pair-tree SIFT@20+KNN@40".to_string()
                        } else {
                            "predict model=nbag-tree SIFT@20+KNN@40+ORB@40".to_string()
                        }
                    })
                    .collect();
                for reply in client_roundtrip(addr, &lines) {
                    assert!(reply.starts_with("ok model="), "{reply}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread finishes");
    }

    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let global = service.metrics().latency().snapshot();
    assert_eq!(global.count, total, "global histogram saw every request");

    // Merging the per-model histograms must reproduce the global one
    // exactly: same count, same sum of microseconds, same buckets.
    let mut merged = bagpred::obs::HistogramSnapshot::default();
    for name in service.model_metrics().names() {
        let model = service.model_metrics().get(&name).expect("model exists");
        merged.merge(&model.latency().snapshot());
    }
    assert_eq!(merged.count, global.count, "per-model counts sum to global");
    assert_eq!(merged.sum, global.sum, "per-model sums equal global sum");
    assert_eq!(merged.buckets, global.buckets, "bucket-for-bucket equal");

    // Queue-wait and service-time decompose the same way.
    let global_service = service.metrics().service().snapshot();
    let mut merged_service = bagpred::obs::HistogramSnapshot::default();
    for name in service.model_metrics().names() {
        let model = service.model_metrics().get(&name).expect("model exists");
        merged_service.merge(&model.service().snapshot());
    }
    assert_eq!(merged_service.count, global_service.count);
    assert_eq!(merged_service.sum, global_service.sum);

    drop(server);
    service.shutdown();
}

#[test]
fn trace_dump_is_admin_gated_and_reports_slow_requests() {
    // Default listener: `trace` never reaches the engine — span
    // breakdowns reveal other clients' request contents and timing.
    let (server, service) = start_server();
    let replies = client_roundtrip(
        server.local_addr(),
        &["trace".to_string(), "predict SIFT@20+KNN@40".to_string()],
    );
    assert!(
        replies[0].starts_with("err admin disabled"),
        "trace must be refused without --admin: {}",
        replies[0]
    );
    assert!(replies[1].starts_with("ok model="), "{}", replies[1]);
    drop(server);
    service.shutdown();

    // Admin listener on a service whose slow threshold is zero: every
    // request is "slow", so the ring has a span breakdown to dump.
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            slow_request_threshold: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            admin: true,
            ..ServerConfig::default()
        },
    )
    .expect("binds ephemeral port");
    let addr = server.local_addr();
    let _ = client_roundtrip(addr, &["predict SIFT@20+KNN@40".to_string()]);

    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"trace\n").expect("writes");
    writer.flush().expect("flushes");
    let mut header = String::new();
    reader.read_line(&mut header).expect("reads");
    let header = header.trim_end();
    let count: usize = header
        .strip_prefix("ok traces=")
        .expect("trace reply header")
        .parse()
        .expect("trace count parses");
    assert!(count >= 1, "zero-threshold service must capture: {header}");
    for _ in 0..count {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads trace line");
        let line = line.trim_end();
        assert!(line.starts_with("trace seq="), "{line}");
        assert!(line.contains("total_us="), "{line}");
        assert!(line.contains("queue_wait:"), "{line}");
        assert!(line.contains("req=predict "), "{line}");
        assert!(line.contains("SIFT@20+KNN@40"), "{line}");
    }
    drop(server);
    service.shutdown();
}

/// The fault-injection acceptance drill from the robustness issue: with a
/// worker panic injected on the pair model under 8 concurrent clients,
/// every in-flight request gets a reply (ok or a *typed* err — never a
/// hang), the uninvolved n-bag model keeps answering byte-identically to
/// the offline predictor, the panicking model is quarantined, and an
/// admin `reload` restores it to bit-exact service.
#[test]
fn injected_worker_panic_under_eight_clients_answers_everyone_and_reload_recovers() {
    const PAIR_CLIENTS: usize = 4;
    const NBAG_CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 6;

    let platforms = Platforms::paper();
    let shared = registry();

    // Expected ok lines come from the *offline* predictors.
    let ServableModel::Pair(pair) = &*shared.get(bootstrap::PAIR_MODEL).expect("registered") else {
        panic!("pair-tree must be a pair model");
    };
    let pair_bag = Bag::pair(
        Workload::new(Benchmark::Sift, 20),
        Workload::new(Benchmark::Knn, 40),
    );
    let pair_ok = format!(
        "ok model={} predicted_s={}",
        bootstrap::PAIR_MODEL,
        fmt_f64(pair.predict(&Measurement::collect(pair_bag, &platforms)))
    );
    let ServableModel::NBag(nbag) = &*shared.get(bootstrap::NBAG_MODEL).expect("registered") else {
        panic!("nbag-tree must be an nbag model");
    };
    let nbag_record = NBagMeasurement::collect_unlabeled(
        bagpred::core::nbag::NBag::new(vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 40),
        ]),
        &platforms,
    );
    let nbag_ok = format!(
        "ok model={} predicted_s={}",
        bootstrap::NBAG_MODEL,
        fmt_f64(nbag.predict(&nbag_record))
    );

    // Snapshots on disk give `reload model=pair-tree` (no path=) its
    // implicit <dir>/pair-tree.bagsnap source. The service gets a private
    // registry decoded from those snapshots so the reload cannot perturb
    // other tests sharing the trained fixture.
    let dir = std::env::temp_dir().join(format!("bagpred-serving-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creates dir");
    shared.save_dir(&dir).expect("saves snapshots");
    let private = Arc::new(ModelRegistry::new());
    assert_eq!(private.load_dir(&dir).expect("loads"), 2);

    // Threshold 1 latches the quarantine on the very first injected
    // panic, whatever batch shapes the 8 clients produce.
    let service = PredictionService::start(
        private,
        platforms.clone(),
        ServiceConfig {
            snapshot_dir: Some(dir.clone()),
            quarantine_threshold: 1,
            faults: Arc::new(
                FaultPlan::parse(&format!(
                    "worker_panic:model={}:count=1",
                    bootstrap::PAIR_MODEL
                ))
                .expect("parses"),
            ),
            workers: 2,
            batch_size: 4,
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            admin: true,
            ..ServerConfig::default()
        },
    )
    .expect("binds ephemeral port");
    let addr = server.local_addr();

    let pair_line = format!("predict model={} SIFT@20+KNN@40", bootstrap::PAIR_MODEL);
    let nbag_line = format!(
        "predict model={} SIFT@20+KNN@40+ORB@40",
        bootstrap::NBAG_MODEL
    );
    let clients: Vec<_> = (0..PAIR_CLIENTS + NBAG_CLIENTS)
        .map(|client| {
            let line = if client < PAIR_CLIENTS {
                pair_line.clone()
            } else {
                nbag_line.clone()
            };
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                // A reply must arrive well inside this window or the
                // test fails with a timeout error — "no hangs" is an
                // assertion, not a hope.
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("sets timeout");
                let mut writer = stream.try_clone().expect("clones");
                let mut reader = BufReader::new(stream);
                let mut replies = Vec::new();
                for _ in 0..REQUESTS_PER_CLIENT {
                    writer.write_all(line.as_bytes()).expect("writes");
                    writer.write_all(b"\n").expect("writes newline");
                    writer.flush().expect("flushes");
                    let mut reply = String::new();
                    assert!(
                        reader.read_line(&mut reply).expect("reply before timeout") > 0,
                        "connection closed without a reply"
                    );
                    replies.push(reply.trim_end().to_string());
                }
                replies
            })
        })
        .collect();
    let replies: Vec<Vec<String>> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread finishes"))
        .collect();

    let mut internal_errors = 0usize;
    for (client, client_replies) in replies.iter().enumerate() {
        for reply in client_replies {
            if client < PAIR_CLIENTS {
                // Pair traffic: a correct prediction, the typed panic
                // error, or the typed quarantine refusal — nothing else.
                if reply == &pair_ok {
                    continue;
                } else if reply.starts_with("err internal:") {
                    internal_errors += 1;
                } else {
                    assert!(
                        reply.starts_with("err unavailable:"),
                        "unexpected pair reply: {reply}"
                    );
                }
            } else {
                // The healthy model is never disturbed by the panic next
                // door: byte-identical on every single request.
                assert_eq!(reply, &nbag_ok, "nbag reply drifted under faults");
            }
        }
    }
    assert!(
        internal_errors >= 1,
        "the injected panic must surface as at least one err internal"
    );

    // The quarantine is visible on the health probe...
    let health = client_roundtrip(addr, &["health".to_string()]).remove(0);
    assert!(
        health.contains(&format!("{}=quarantined:", bootstrap::PAIR_MODEL)),
        "{health}"
    );
    assert!(
        health.contains(&format!("{}=ok:", bootstrap::NBAG_MODEL)),
        "{health}"
    );
    // ...and a fresh pair request is refused with the typed error.
    let refused = client_roundtrip(addr, std::slice::from_ref(&pair_line)).remove(0);
    assert!(refused.starts_with("err unavailable:"), "{refused}");

    // Admin reload clears the quarantine and restores bit-exact service.
    let replies = client_roundtrip(
        addr,
        &[
            format!("reload model={}", bootstrap::PAIR_MODEL),
            "health".to_string(),
            pair_line.clone(),
        ],
    );
    assert_eq!(
        replies[0],
        format!("ok reloaded model={} kind=pair/tree", bootstrap::PAIR_MODEL)
    );
    assert!(
        replies[1].contains(&format!("{}=ok:", bootstrap::PAIR_MODEL)),
        "{}",
        replies[1]
    );
    assert_eq!(
        replies[2], pair_ok,
        "restored model must predict bit-identically"
    );

    std::fs::remove_dir_all(&dir).ok();
    drop(server);
    service.shutdown();
}

/// Torn snapshot writes (the crash-mid-write the atomic tmp+rename path
/// exists to prevent) must not keep the service down: the boot
/// quarantines every corrupt file, falls back to retraining, and the
/// written-back snapshots round-trip bit-identically.
#[test]
fn torn_snapshot_writes_quarantine_on_boot_and_fall_back_to_retraining() {
    let platforms = Platforms::paper();
    let dir = std::env::temp_dir().join(format!("bagpred-serving-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creates dir");

    // Write both snapshots through an armed torn-write plan: half the
    // bytes land on the final path, exactly as a crash between `write`
    // and `fsync` would leave a non-atomic writer.
    let torn = FaultPlan::parse("torn_snapshot_write:count=2").expect("parses");
    registry().save_dir_with(&dir, &torn).expect("torn writes");
    for name in [bootstrap::PAIR_MODEL, bootstrap::NBAG_MODEL] {
        let len = std::fs::metadata(dir.join(format!("{name}.bagsnap")))
            .expect("file exists")
            .len();
        let full = registry().snapshot(name).expect("encodes").len() as u64;
        assert_eq!(len, full / 2, "the torn write must truncate {name}");
    }

    let boot = bootstrap::load_or_train(&platforms, Some(&dir)).expect("boot survives");
    match boot.source {
        bootstrap::BootSource::Trained(bootstrap::SnapshotWriteback::Saved(n)) => {
            assert_eq!(n, 2, "retrained models written back")
        }
        other => panic!("expected retrain-with-writeback, got {other:?}"),
    }
    assert_eq!(boot.quarantined.len(), 2, "both torn files quarantined");
    for corrupt in &boot.quarantined {
        assert!(corrupt.exists(), "{corrupt:?} moved aside, not deleted");
    }
    assert_eq!(boot.registry.list(), registry().list());

    // The write-back used the real (atomic) path: loading the directory
    // again yields snapshot text bit-identical to the trained models.
    let reread = Arc::new(ModelRegistry::new());
    assert_eq!(reread.load_dir(&dir).expect("loads"), 2);
    for (name, _) in registry().list() {
        assert_eq!(
            reread.snapshot(&name).expect("encodes"),
            registry().snapshot(&name).expect("encodes"),
            "re-saved snapshot for `{name}` must round-trip bit-identically"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `deadline_ms` sheds stale requests at dequeue with `err deadline`
/// instead of serving them late: a request parked behind an injected
/// 300ms predict stall with a 50ms budget is refused, while the patient
/// request ahead of it completes normally.
#[test]
fn deadline_shedding_refuses_stale_requests_behind_a_stalled_worker() {
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            workers: 1,
            batch_size: 1,
            faults: Arc::new(
                FaultPlan::parse(&format!(
                    "slow_predict:model={}:count=1:ms=300",
                    bootstrap::PAIR_MODEL
                ))
                .expect("parses"),
            ),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    // Warm the feature cache directly (not via a predict request, which
    // would spend the single-shot fault budget) so the stalled request's
    // service time is the injected 300ms, not collection noise.
    service.cache().pair_measurement(
        Bag::pair(
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        ),
        &Platforms::paper(),
    );

    // Connection A parks the only worker in the injected stall...
    let stream_a = TcpStream::connect(addr).expect("connects");
    let mut writer_a = stream_a.try_clone().expect("clones");
    let mut reader_a = BufReader::new(stream_a);
    writer_a
        .write_all(format!("predict model={} SIFT@20+KNN@40\n", bootstrap::PAIR_MODEL).as_bytes())
        .expect("writes");
    writer_a.flush().expect("flushes");
    std::thread::sleep(Duration::from_millis(50));

    // ...so connection B's 50ms budget is long gone when the worker
    // finally dequeues it ~250ms later.
    let stale = client_roundtrip(
        addr,
        &[format!(
            "predict model={} deadline_ms=50 SIFT@20+KNN@40",
            bootstrap::PAIR_MODEL
        )],
    )
    .remove(0);
    assert!(
        stale.starts_with("err deadline:"),
        "expected a deadline shed, got: {stale}"
    );

    // The patient request was served normally despite the stall.
    let mut reply_a = String::new();
    reader_a.read_line(&mut reply_a).expect("reads");
    assert!(reply_a.starts_with("ok "), "{reply_a}");

    // The shed is accounted, on the wire and in the exposition.
    let stats = client_roundtrip(addr, &["stats".to_string()]).remove(0);
    assert!(stats.contains("deadline_expired=1"), "{stats}");
    assert!(
        service
            .exposition()
            .contains("bagpred_deadline_expired_total 1"),
        "exposition must carry the deadline counter"
    );
    drop(server);
    service.shutdown();
}

/// The bundled `Client` rides out load shedding: eight clients hammer a
/// deliberately tiny queue (one worker, capacity 2, with injected predict
/// stalls) and every request eventually lands — `err overloaded` replies
/// are retried with jittered exponential backoff, never surfaced.
#[test]
fn client_backoff_retries_shed_requests_until_every_client_succeeds() {
    const CLIENTS: usize = 8;

    let platforms = Platforms::paper();
    let ServableModel::Pair(pair) = &*registry().get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };
    let bag = Bag::pair(
        Workload::new(Benchmark::Sift, 20),
        Workload::new(Benchmark::Knn, 40),
    );
    let expected = format!(
        "ok model={} predicted_s={}",
        bootstrap::PAIR_MODEL,
        fmt_f64(pair.predict(&Measurement::collect(bag, &platforms)))
    );

    let service = PredictionService::start(
        registry(),
        platforms,
        ServiceConfig {
            workers: 1,
            batch_size: 1,
            queue_capacity: 2,
            faults: Arc::new(
                FaultPlan::parse(&format!(
                    "slow_predict:model={}:count=2:ms=150",
                    bootstrap::PAIR_MODEL
                ))
                .expect("parses"),
            ),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    let line = format!("predict model={} SIFT@20+KNN@40", bootstrap::PAIR_MODEL);
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let line = line.clone();
            std::thread::spawn(move || {
                let mut client = Client::with_config(
                    addr,
                    ClientConfig {
                        max_attempts: 10,
                        base_backoff: Duration::from_millis(25),
                        // Distinct seeds decorrelate the retry storms.
                        jitter_seed: 0x5DEE_CE66 + client as u64,
                        ..ClientConfig::default()
                    },
                );
                let reply = client.request(&line).expect("retries must converge");
                (reply, client.retries())
            })
        })
        .collect();

    let mut total_retries = 0u64;
    for handle in clients {
        let (reply, retries) = handle.join().expect("client thread finishes");
        assert_eq!(reply, expected, "retried replies stay byte-identical");
        total_retries += retries;
    }
    assert!(
        total_retries >= 1,
        "a capacity-2 queue under 8 clients must shed at least once"
    );
    // Shed requests were retried by the client, not dropped: the engine
    // counted them, and every client still ended with an ok reply.
    let stats = client_roundtrip(addr, &["stats".to_string()]).remove(0);
    let shed: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("shed="))
        .expect("stats carry shed=")
        .parse()
        .expect("shed count parses");
    assert!(
        shed >= total_retries,
        "every retry stems from a shed: {stats}"
    );
    drop(server);
    service.shutdown();
}

/// An injected reply-write stall delays the reply but never corrupts or
/// drops it — and the pause lands in the reply-write stage histogram
/// where a congested socket would show up.
#[test]
fn stalled_reply_writes_delay_but_never_drop_replies() {
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            faults: Arc::new(FaultPlan::parse("stall_reply_write:count=1:ms=150").expect("parses")),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    let started = Instant::now();
    let reply = client_roundtrip(addr, &["models".to_string()]).remove(0);
    let stalled = started.elapsed();
    assert!(reply.starts_with("ok models="), "{reply}");
    assert!(
        stalled >= Duration::from_millis(150),
        "the stall must be visible end-to-end, got {stalled:?}"
    );

    // The second request is past the budget: fast again.
    let started = Instant::now();
    let reply = client_roundtrip(addr, &["models".to_string()]).remove(0);
    assert!(reply.starts_with("ok models="), "{reply}");
    assert!(started.elapsed() < Duration::from_millis(150));
    drop(server);
    service.shutdown();
}

/// Measures the fast model's p99 latency under mixed-model concurrency:
/// four clients hammer `pair-tree` (optionally slowed through the
/// `slow_predict` fault site), four clients hammer `nbag-tree`, and only
/// the nbag half's latencies are kept. Exact nearest-rank p99 over the
/// raw samples (no histogram bucketing).
fn fast_model_p99(sharded: bool, slow_ms: Option<u64>, requests_per_client: usize) -> Duration {
    let faults = match slow_ms {
        Some(ms) => Arc::new(
            FaultPlan::parse(&format!(
                "slow_predict:model=pair-tree:count=1000000:ms={ms}"
            ))
            .expect("fault spec parses"),
        ),
        None => Arc::new(FaultPlan::none()),
    };
    let service = PredictionService::start(
        registry(),
        Platforms::paper(),
        ServiceConfig {
            sharded,
            faults,
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
    let addr = server.local_addr();

    let mut fast_samples: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let mut fast_handles = Vec::new();
        for i in 0..8 {
            let is_fast = i % 2 == 1;
            let handle = scope.spawn(move || {
                let mut client = Client::new(addr);
                let line = if is_fast {
                    "predict model=nbag-tree SIFT@20+KNN@40"
                } else {
                    "predict model=pair-tree SIFT@20+KNN@40"
                };
                let mut samples = Vec::new();
                for _ in 0..requests_per_client {
                    let start = Instant::now();
                    let reply = client.request(line).expect("isolation request");
                    assert!(reply.starts_with("ok "), "{reply}");
                    samples.push(start.elapsed());
                }
                samples
            });
            if is_fast {
                fast_handles.push(handle);
            }
        }
        for handle in fast_handles {
            fast_samples.extend(handle.join().expect("fast client finishes"));
        }
    });
    drop(server);
    service.shutdown();

    fast_samples.sort();
    let rank = ((fast_samples.len() as f64 * 0.99).ceil() as usize).clamp(1, fast_samples.len());
    fast_samples[rank - 1]
}

#[test]
fn shard_isolation_keeps_fast_model_p99_near_baseline_while_unsharded_degrades() {
    // Every pair-tree predict sleeps 80ms. Sharded, nbag-tree has its
    // own queue and workers and never sees the sleeps; unsharded, the
    // four shared workers spend most of their time inside them and the
    // fast model's requests queue behind.
    let slow = Duration::from_millis(80);
    let baseline = fast_model_p99(true, None, 30);
    let sharded = fast_model_p99(true, Some(slow.as_millis() as u64), 30);
    let unsharded = fast_model_p99(false, Some(slow.as_millis() as u64), 30);

    // The isolation contract: a slowed peer moves the fast model's p99
    // by at most 2x (with an absolute floor absorbing scheduler noise
    // on loaded CI machines -- still a quarter of one injected sleep).
    let allowed = (baseline * 2).max(slow / 4);
    assert!(
        sharded <= allowed,
        "sharded fast-model p99 {sharded:?} exceeds {allowed:?} \
         (baseline {baseline:?}) -- shard isolation is broken"
    );
    // The single shared queue must visibly degrade: the fast model's
    // p99 lands at least half an injected sleep out, and well past the
    // sharded run. This is the regression sharding exists to prevent.
    assert!(
        unsharded >= slow / 2,
        "unsharded fast-model p99 {unsharded:?} never stalled behind the \
         {slow:?} sleeps -- the degradation control lost its signal"
    );
    assert!(
        unsharded > sharded * 2,
        "unsharded p99 {unsharded:?} is not measurably worse than sharded \
         {sharded:?}"
    );
}

/// Reads one length-prefixed frame off a raw socket: prelude, declared
/// body, then a full decode.
fn read_wire_frame(reader: &mut BufReader<TcpStream>) -> frame::Frame {
    use std::io::Read;
    let mut prelude = [0u8; frame::PRELUDE_LEN];
    reader.read_exact(&mut prelude).expect("reads prelude");
    let body_len = frame::decode_prelude(&prelude).expect("prelude decodes");
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).expect("reads body");
    frame::decode_body(&body).expect("body decodes")
}

#[test]
fn binary_wire_predictions_are_bit_identical_to_the_offline_predictor() {
    let (server, service) = start_server();
    let addr = server.local_addr();
    let platforms = Platforms::paper();
    let registry = registry();
    let ServableModel::Pair(predictor) = &*registry.get(bootstrap::PAIR_MODEL).expect("registered")
    else {
        panic!("pair-tree must be a pair model");
    };

    let bags = [
        (Benchmark::Sift, 20, Benchmark::Knn, 40),
        (Benchmark::Hog, 20, Benchmark::Fast, 80),
        (Benchmark::Orb, 40, Benchmark::Surf, 40),
    ];
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones stream");
    let mut reader = BufReader::new(stream);

    // Pipeline all three Predict frames before reading a single reply:
    // the binary dialect multiplexes on request ids, so the client need
    // not alternate write/read like the text protocol does.
    for (id, &(ba, na, bb, nb)) in bags.iter().enumerate() {
        let request = frame::Frame::new(
            id as u64 + 1,
            frame::Payload::Predict {
                model: Some(bootstrap::PAIR_MODEL.to_string()),
                apps: vec![Workload::new(ba, na), Workload::new(bb, nb)],
                deadline: None,
                priority: bagpred::serve::Priority::Normal,
                hedge_of: None,
            },
        );
        writer
            .write_all(&frame::encode(&request))
            .expect("writes frame");
    }
    writer.flush().expect("flushes");

    let mut replies: Vec<frame::Frame> = (0..bags.len())
        .map(|_| read_wire_frame(&mut reader))
        .collect();
    replies.sort_by_key(|f| f.request_id);

    for (reply, &(ba, na, bb, nb)) in replies.iter().zip(&bags) {
        let bag = Bag::pair(Workload::new(ba, na), Workload::new(bb, nb));
        let expected = predictor.predict(&Measurement::collect(bag, &platforms));
        let frame::Payload::Prediction { model, predicted_s } = &reply.payload else {
            panic!("expected a Prediction frame, got {:?}", reply.payload);
        };
        assert_eq!(model, bootstrap::PAIR_MODEL);
        assert_eq!(
            predicted_s.to_bits(),
            expected.to_bits(),
            "binary wire prediction must be bit-identical to the offline \
             predictor ({predicted_s} vs {expected})"
        );
    }

    // A Line frame rides the same connection: admin-free verbs answer
    // as LineReply text, exactly like the text dialect renders them.
    let request = frame::Frame::new(9, frame::Payload::Line("models".to_string()));
    writer
        .write_all(&frame::encode(&request))
        .expect("writes frame");
    writer.flush().expect("flushes");
    let reply = read_wire_frame(&mut reader);
    assert_eq!(reply.request_id, 9);
    let frame::Payload::LineReply(text) = &reply.payload else {
        panic!("expected a LineReply frame, got {:?}", reply.payload);
    };
    assert!(text.starts_with("ok models="), "{text}");

    drop(writer);
    drop(reader);
    drop(server);
    service.shutdown();
}
